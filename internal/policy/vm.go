package policy

import "sync"

// The metered stack VM. One Run borrows a pooled machine, executes the
// flat instruction stream, and returns exactly what the tree-walking
// Eval would — same value, same error strings, same evaluation order —
// while charging a per-invocation Budget per instruction and per
// allocation unit.
//
// Safety argument (the Starlark model, specialized to a loop-free
// language):
//
//   - Steps: TPL has no loops, calls, or recursion at runtime, so a
//     program of K instructions executes at most K steps; the step
//     budget lets an enforcement point cap cost below K for
//     adversarially large programs. Every opcode's per-step work is O(1)
//     except Equal/in on lists, whose operands' materialization was
//     itself charged one allocation unit per element — so total work per
//     invocation is O(Steps + Allocs), always.
//   - Allocations: every op that materializes a string or list charges
//     units before producing the value, including constant pushes (the
//     pool is shared, but each invocation pays for what it touches), so
//     the allocation budget bounds per-invocation memory traffic.
//   - No Go allocation on the breach path: budget errors and unknown-
//     attribute errors are pre-built; a hostile policy costs its budget
//     and nothing else.

// vm is the reusable execution scratch: just a value stack, sized to the
// largest program it has run.
type vm struct {
	stack []Value
}

var vmPool = sync.Pool{New: func() interface{} { return &vm{} }}

// opSyms maps comparison/logic opcodes to their source-level operator
// for error messages that match Eval byte-for-byte.
var opSyms = [...]string{
	opLt: "<", opGt: ">", opLe: "<=", opGe: ">=",
	opAndJump: "&&", opAndCheck: "&&", opOrJump: "||", opOrCheck: "||",
}

// Run executes the program under env with the given budget and returns
// the result. A nil budget runs unmetered (for trusted internal use
// only; choice points handling foreign policies must pass one). Budgets
// accumulate across Runs until Reset, so a document can share one budget
// across its rules. Steady-state Run on a scalar program performs zero
// Go allocations.
func (p *Program) Run(env Env, b *Budget) (Value, error) {
	m := vmPool.Get().(*vm)
	v, err := p.exec(m, env, nil, b)
	vmPool.Put(m)
	return v, err
}

// RunSlots is the dense fast path: attribute slot i (see Attrs) reads
// slots[i] directly, skipping the map lookup. The caller owns slot
// binding and must supply exactly len(Attrs()) values; use Run when the
// attribute vocabulary is not known in advance.
func (p *Program) RunSlots(slots []Value, b *Budget) (Value, error) {
	if len(slots) != len(p.attrs) {
		return Value{}, &EvalError{Msg: "slot binding does not match program attributes"}
	}
	m := vmPool.Get().(*vm)
	v, err := p.exec(m, env0, slots, b)
	vmPool.Put(m)
	return v, err
}

// env0 is the empty environment RunSlots passes (never consulted).
var env0 = Env{}

func (p *Program) exec(m *vm, env Env, slots []Value, b *Budget) (Value, error) {
	if cap(m.stack) < p.maxStack {
		m.stack = make([]Value, 0, p.maxStack)
	}
	stack := m.stack[:0]
	metered := b != nil
	var steps, allocs, stepLimit, allocLimit int64
	if metered {
		steps, allocs = b.stepsUsed, b.allocsUsed
		stepLimit, allocLimit = b.Steps, b.Allocs
	}
	var res Value
	var err error
	code := p.code
loop:
	for pc := 0; pc < len(code); pc++ {
		if metered {
			steps++
			if steps > stepLimit {
				err = ErrBudgetExceeded
				break loop
			}
		}
		in := code[pc]
		switch in.op {
		case opConst:
			if metered {
				allocs += p.constCost[in.arg]
				if allocs > allocLimit {
					err = ErrBudgetExceeded
					break loop
				}
			}
			stack = append(stack, p.consts[in.arg])
		case opAttr:
			if slots != nil {
				stack = append(stack, slots[in.arg])
				break
			}
			v, ok := env[p.attrs[in.arg]]
			if !ok {
				err = p.attrErrs[in.arg]
				break loop
			}
			stack = append(stack, v)
		case opNot:
			top := stack[len(stack)-1]
			if top.Kind != KindBool {
				err = evalErrf("! applied to %v", top)
				break loop
			}
			stack[len(stack)-1] = Bool(!top.B)
		case opEq, opNe:
			r := stack[len(stack)-1]
			l := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			eq := l.Equal(r)
			if in.op == opNe {
				eq = !eq
			}
			stack[len(stack)-1] = Bool(eq)
		case opLt, opGt, opLe, opGe:
			r := stack[len(stack)-1]
			l := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			var cmp bool
			switch {
			case l.Kind == KindNumber && r.Kind == KindNumber:
				switch in.op {
				case opLt:
					cmp = l.N < r.N
				case opGt:
					cmp = l.N > r.N
				case opLe:
					cmp = l.N <= r.N
				default:
					cmp = l.N >= r.N
				}
			case l.Kind == KindString && r.Kind == KindString:
				switch in.op {
				case opLt:
					cmp = l.S < r.S
				case opGt:
					cmp = l.S > r.S
				case opLe:
					cmp = l.S <= r.S
				default:
					cmp = l.S >= r.S
				}
			default:
				err = evalErrf("%s applied to %v and %v", opSyms[in.op], l, r)
				break loop
			}
			stack[len(stack)-1] = Bool(cmp)
		case opIn:
			r := stack[len(stack)-1]
			l := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			if r.Kind != KindList {
				err = evalErrf("'in' needs a list on the right, got %v", r)
				break loop
			}
			found := false
			for i := range r.L {
				if l.Equal(r.L[i]) {
					found = true
					break
				}
			}
			stack[len(stack)-1] = Bool(found)
		case opMakeList:
			n := int(in.arg)
			if metered {
				allocs += int64(1 + n)
				if allocs > allocLimit {
					err = ErrBudgetExceeded
					break loop
				}
			}
			out := make([]Value, n)
			copy(out, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			stack = append(stack, List(out...))
		case opAndJump, opOrJump:
			top := stack[len(stack)-1]
			if top.Kind != KindBool {
				err = evalErrf("%s applied to %v", opSyms[in.op], top)
				break loop
			}
			short := top.B == (in.op == opOrJump)
			if short {
				pc = int(in.arg) - 1 // leave the deciding value on the stack
			} else {
				stack = stack[:len(stack)-1]
			}
		case opAndCheck, opOrCheck:
			top := stack[len(stack)-1]
			if top.Kind != KindBool {
				err = evalErrf("%s applied to %v", opSyms[in.op], top)
				break loop
			}
		}
	}
	if err == nil {
		res = stack[len(stack)-1]
	}
	m.stack = stack[:0]
	if metered {
		b.stepsUsed, b.allocsUsed = steps, allocs
	}
	return res, err
}
