package trust

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// These tests pin the compiled attestation policy: a relying party's
// acceptance predicate over certificate attributes runs on the metered
// policy VM, denies fail-safe on missing attributes, and composes with
// cryptographic chain validation.

func TestAttestationPolicyCheck(t *testing.T) {
	rng := sim.NewRNG(11)
	ca := NewPrincipal("root-ca", Certified, rng)
	alice := NewPrincipal("alice", Certified, rng)
	cert := Issue(ca, "alice", alice.Pub,
		map[string]string{"role": "subscriber", "region": "eu"}, 100*sim.Second)

	ap, err := NewAttestationPolicy(`role == "subscriber" && issuer == "root-ca"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Check(cert); err != nil {
		t.Fatalf("matching attestation rejected: %v", err)
	}

	admin, err := NewAttestationPolicy(`role == "admin"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.Check(cert); !errors.Is(err, ErrAttestationDenied) {
		t.Fatalf("mismatched attestation error = %v", err)
	}

	// Referencing an attribute the issuer never attested denies — the
	// missing-attribute evaluation error is wrapped, not swallowed.
	clearance, err := NewAttestationPolicy(`clearance == "high"`)
	if err != nil {
		t.Fatal(err)
	}
	err = clearance.Check(cert)
	if !errors.Is(err, ErrAttestationDenied) || !strings.Contains(err.Error(), "unknown attribute") {
		t.Fatalf("missing-attribute error = %v", err)
	}

	// A non-bool policy result also denies.
	num, err := NewAttestationPolicy(`region`)
	if err != nil {
		t.Fatal(err)
	}
	if err := num.Check(cert); !errors.Is(err, ErrAttestationDenied) {
		t.Fatalf("non-bool policy error = %v", err)
	}
}

func TestVerifyChainWithPolicy(t *testing.T) {
	rng := sim.NewRNG(12)
	root := NewPrincipal("root", Certified, rng)
	inter := NewPrincipal("intermediate", Certified, rng)
	leaf := NewPrincipal("leaf", Certified, rng)
	interCert := Issue(root, "intermediate", inter.Pub, nil, 100*sim.Second)
	leafCert := Issue(inter, "leaf", leaf.Pub,
		map[string]string{"role": "server"}, 100*sim.Second)
	anchors := Anchors{"root": root.Pub}
	chain := []*Certificate{leafCert, interCert}

	ok, err := NewAttestationPolicy(`role == "server" && issuer == "intermediate"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChainWithPolicy(chain, anchors, 10, ok); err != nil {
		t.Fatalf("valid chain + matching policy rejected: %v", err)
	}
	// nil policy degrades to plain chain validation.
	if err := VerifyChainWithPolicy(chain, anchors, 10, nil); err != nil {
		t.Fatalf("nil policy rejected valid chain: %v", err)
	}
	deny, err := NewAttestationPolicy(`role == "client"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChainWithPolicy(chain, anchors, 10, deny); !errors.Is(err, ErrAttestationDenied) {
		t.Fatalf("policy-denied chain error = %v", err)
	}
	// Cryptographic failure wins over the policy verdict: a chain that
	// does not verify never reaches attestation checks.
	if err := VerifyChainWithPolicy(chain, Anchors{}, 10, ok); errors.Is(err, ErrAttestationDenied) || err == nil {
		t.Fatalf("unanchored chain error = %v", err)
	}
}
