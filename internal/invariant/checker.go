package invariant

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// maxViolations caps how many violations a checker retains verbatim;
// beyond it only the total count grows. A single broken invariant in a
// large trial can fire thousands of times, and the first few are what a
// reproducer needs.
const maxViolations = 64

// Checker validates invariants against one running simulation. It plugs
// into the existing observability seams rather than adding new ones:
//
//   - as an obs.Sink it consumes the netsim event stream (send, enqueue,
//     dup, deliver, drop) for the conservation, queue-bound, and clock
//     invariants — when no tracer is attached the forwarding fast path
//     pays its usual single nil check and nothing else;
//   - as a chaos.Observer it snapshots ground-truth connectivity after
//     every applied fault, building the epoch timeline the cut-delivery
//     invariant is judged against;
//   - post-run, CheckTrace / CheckRoutes / Finish validate per-packet
//     traces, installed routing tables, and global packet accounting.
//
// A Checker is single-threaded, like the simulation it observes.
type Checker struct {
	Net *netsim.Network

	enabled map[string]bool

	// Event-stream accounting (conservation, queue-bound, clock).
	sends, dups, delivers, drops int
	lastTime                     int64

	// epochs is the connectivity timeline: one entry per fault
	// application (plus the initial state), each recording the connected
	// components of the live topology from that instant on.
	epochs []epoch

	violations []Violation
	// Total counts every violation detected, including those beyond the
	// retention cap.
	Total int
}

// epoch is one interval of constant ground-truth connectivity.
type epoch struct {
	start sim.Time
	comp  map[topology.NodeID]int
}

// NewChecker builds a checker over net with the given invariant set
// (nil arms all). Attach it as the network's tracer sink and register it
// as a chaos engine observer, then call BeginEpoch before traffic starts.
func NewChecker(net *netsim.Network, enabled map[string]bool) *Checker {
	if enabled == nil {
		enabled = AllSet()
	}
	return &Checker{Net: net, enabled: enabled}
}

// Violations returns the retained violations (at most maxViolations;
// Total has the full count).
func (c *Checker) Violations() []Violation { return c.violations }

// Report records a violation of the named invariant, if it is armed.
func (c *Checker) Report(invariant, detail string, timeNs int64) {
	if !c.enabled[invariant] {
		return
	}
	c.Total++
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, Violation{Invariant: invariant, Detail: detail, TimeNs: timeNs})
	}
}

// Emit implements obs.Sink: the live event-stream checks.
func (c *Checker) Emit(e obs.Event) {
	if e.Time < c.lastTime {
		c.Report(Clock, fmt.Sprintf("event %s/%s at node %d has time %dns, before previous event at %dns",
			e.Scope, e.Kind, e.Node, e.Time, c.lastTime), e.Time)
	} else {
		c.lastTime = e.Time
	}
	if e.Scope != "netsim" {
		return
	}
	switch e.Kind {
	case "send":
		c.sends++
	case "dup":
		c.dups++
	case "deliver":
		c.delivers++
	case "drop":
		c.drops++
		if e.Detail == "" {
			c.Report(Conservation, fmt.Sprintf("unreasoned drop at node %d", e.Node), e.Time)
		}
	case "enqueue":
		if max := float64(c.Net.MaxQueue); e.Value > max {
			c.Report(QueueBound, fmt.Sprintf("node %d admitted a packet leaving %.0fns of backlog, above MaxQueue %.0fns",
				e.Node, e.Value, max), e.Time)
		}
	}
}

// Fault implements chaos.Observer: every applied fault (including each
// individual flap toggle) opens a new connectivity epoch. The network
// already reflects the fault when observers run, so the snapshot is the
// post-fault ground truth.
func (c *Checker) Fault(ev chaos.Event, now sim.Time) {
	if !c.enabled[CutDelivery] {
		return
	}
	c.epochs = append(c.epochs, epoch{start: now, comp: Components(c.Net)})
}

// BeginEpoch records the initial (pre-fault) connectivity. Call it after
// wiring and before the scheduler runs.
func (c *Checker) BeginEpoch() {
	if !c.enabled[CutDelivery] {
		return
	}
	c.epochs = append(c.epochs, epoch{start: c.Net.Sched.Now(), comp: Components(c.Net)})
}

// Components labels every node with a connected-component index over the
// currently-live topology (failed links skipped, crashed nodes isolated
// with component -1). Deterministic: nodes are visited in ID order.
func Components(net *netsim.Network) map[topology.NodeID]int {
	g := net.Graph
	comp := make(map[topology.NodeID]int, len(g.Nodes))
	next := 0
	for _, id := range g.NodeIDs() {
		if net.NodeFailed(id) {
			comp[id] = -1
			continue
		}
		if _, seen := comp[id]; seen {
			continue
		}
		comp[id] = next
		queue := []topology.NodeID{id}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(cur) {
				if net.NodeFailed(nb) || net.LinkFailed(cur, nb) {
					continue
				}
				if _, seen := comp[nb]; seen {
					continue
				}
				comp[nb] = next
				queue = append(queue, nb)
			}
		}
		next++
	}
	return comp
}

// reachableDuring reports whether a temporal path from src to dst
// existed during [t0, t1]: walking the connectivity epochs overlapping
// the flight in order, the set of nodes reachable from src is closed
// under each epoch's components in turn. Store-and-forward delivery is
// legitimate across a *sequence* of epochs none of which has end-to-end
// connectivity — a packet can cross each link while it is individually
// up (e.g. riding out a flap in a queue) — so only the absence of any
// temporal path convicts a delivery.
func (c *Checker) reachableDuring(src, dst topology.NodeID, t0, t1 sim.Time) bool {
	if len(c.epochs) == 0 {
		return true // no timeline recorded: nothing to judge against
	}
	reached := map[topology.NodeID]bool{src: true}
	for i, ep := range c.epochs {
		end := sim.Time(1<<62 - 1)
		if i+1 < len(c.epochs) {
			end = c.epochs[i+1].start
		}
		if end <= t0 {
			continue
		}
		if ep.start > t1 {
			break
		}
		comps := make(map[int]bool)
		for n := range reached {
			if cc, ok := ep.comp[n]; ok && cc >= 0 {
				comps[cc] = true
			}
		}
		for n, cc := range ep.comp {
			if cc >= 0 && comps[cc] {
				reached[n] = true
			}
		}
		if reached[dst] {
			return true
		}
	}
	return false
}

// CheckTrace validates one completed per-packet trace: exactly one
// terminal event, non-decreasing timestamps, a hop-adjacent path, a
// forward count bounded by the packet's TTL (the trace invariant), and —
// for delivered packets — that the endpoints were connected at some
// point during the flight (the cut-delivery invariant).
func (c *Checker) CheckTrace(tr *netsim.Trace, maxTTL int) {
	if tr == nil {
		return
	}
	if !c.enabled[TraceValid] && !c.enabled[CutDelivery] {
		return
	}
	evs := tr.Events
	if len(evs) == 0 {
		c.Report(TraceValid, "trace has no events", int64(tr.SentAt))
		return
	}
	last := evs[len(evs)-1]
	switch {
	case tr.Delivered && tr.DropReason != "":
		c.Report(TraceValid, fmt.Sprintf("trace both delivered and dropped (%q at node %d)", tr.DropReason, tr.DropNode), int64(tr.DoneAt))
	case tr.Delivered && last.Action != "deliver":
		c.Report(TraceValid, fmt.Sprintf("delivered trace ends with %q at node %d, not a deliver event", last.Action, last.Node), int64(last.At))
	case !tr.Delivered && last.Action != "drop":
		c.Report(TraceValid, fmt.Sprintf("undelivered trace ends with %q at node %d, not a drop event", last.Action, last.Node), int64(last.At))
	}
	forwards := 0
	for i, e := range evs {
		if e.Action == "forward" {
			forwards++
		}
		if i == 0 {
			continue
		}
		prev := evs[i-1]
		if e.At < prev.At {
			c.Report(TraceValid, fmt.Sprintf("trace timestamps regress: event %d at %dns after event %d at %dns",
				i, e.At, i-1, prev.At), int64(e.At))
		}
		if e.Node != prev.Node {
			if _, adjacent := c.Net.Graph.LinkBetween(prev.Node, e.Node); !adjacent {
				c.Report(TraceValid, fmt.Sprintf("trace teleports: node %d to non-adjacent node %d (event %d)",
					prev.Node, e.Node, i), int64(e.At))
			}
		}
	}
	if maxTTL > 0 && forwards > maxTTL {
		c.Report(TraceValid, fmt.Sprintf("trace took %d forward hops, above TTL %d", forwards, maxTTL), int64(tr.DoneAt))
	}
	if tr.Delivered {
		src, dst := evs[0].Node, last.Node
		if src != dst && !c.reachableDuring(src, dst, tr.SentAt, tr.DoneAt) {
			c.Report(CutDelivery, fmt.Sprintf("packet delivered from %d to %d with no temporal path across the cut during its flight [%d,%d]ns",
				src, dst, tr.SentAt, tr.DoneAt), int64(tr.DoneAt))
		}
	}
}

// CheckRoutes walks every node's installed RouteFunc toward every
// destination and reports forwarding loops: a walk that takes more steps
// than there are nodes can only be cycling. Call it after the scheduler
// drains, when reconvergence (including delayed installs) is complete.
func (c *Checker) CheckRoutes() {
	if !c.enabled[LoopFree] {
		return
	}
	ids := c.Net.Graph.NodeIDs()
	for _, dst := range ids {
		if c.Net.NodeFailed(dst) {
			continue
		}
		addr := packet.MakeAddr(uint16(dst), 1)
		tip := packet.TIP{Dst: addr}
		for _, src := range ids {
			if src == dst || c.Net.NodeFailed(src) {
				continue
			}
			cur := src
			for steps := 0; ; steps++ {
				if steps > len(ids) {
					c.Report(LoopFree, fmt.Sprintf("routing loop: walking from %d toward %d did not terminate within %d hops",
						src, dst, len(ids)), int64(c.Net.Sched.Now()))
					break
				}
				if cur == dst || c.Net.NodeFailed(cur) {
					break // arrived, or the packet would die here — no loop
				}
				nd := c.Net.Node(cur)
				if nd.Route == nil {
					break
				}
				next, ok := nd.Route(addr, &tip)
				if !ok || next == cur {
					break
				}
				if _, adjacent := c.Net.Graph.LinkBetween(cur, next); !adjacent {
					break // would drop bad-next-hop; broken, but not a loop
				}
				cur = next
			}
		}
	}
}

// Finish closes the run: the global packet-conservation check. Every
// entry into the network (send or injected duplicate) must have exactly
// one terminal event (deliver or drop).
func (c *Checker) Finish() {
	if !c.enabled[Conservation] {
		return
	}
	in, out := c.sends+c.dups, c.delivers+c.drops
	if in != out {
		c.Report(Conservation, fmt.Sprintf("packet conservation broken: %d sends + %d dups = %d in, but %d delivers + %d drops = %d out",
			c.sends, c.dups, in, c.delivers, c.drops, out), int64(c.Net.Sched.Now()))
	}
}
