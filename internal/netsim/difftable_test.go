package netsim

import (
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// refModel is the map-based reference the dense linkTable and its fault
// mirrors are pinned against: the simplest possible bookkeeping, updated
// in lockstep with the Network under a random operation schedule.
type refModel struct {
	failed   map[[2]topology.NodeID]bool
	down     map[topology.NodeID]bool
	impaired map[[2]topology.NodeID]bool
}

func newRefModel() *refModel {
	return &refModel{
		failed:   map[[2]topology.NodeID]bool{},
		down:     map[topology.NodeID]bool{},
		impaired: map[[2]topology.NodeID]bool{},
	}
}

func refKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// checkAgainst compares every observable of the dense tables with the
// reference: per-link failure state (map and dense row), adjacency rows
// (membership, sortedness, and link-index correctness), the crashed-node
// mirror, and the impairment mirror's nil-when-empty contract.
func (m *refModel) checkAgainst(t *testing.T, n *Network, step int) {
	t.Helper()
	g := n.Graph
	for i, l := range g.Links {
		want := m.failed[refKey(l.A, l.B)]
		if got := n.LinkFailed(l.A, l.B); got != want {
			t.Fatalf("step %d: LinkFailed(%d,%d) = %v, ref %v", step, l.A, l.B, got, want)
		}
		if got := n.lt.failed[i]; got != want {
			t.Fatalf("step %d: dense failed[%d] (%d–%d) = %v, ref %v", step, i, l.A, l.B, got, want)
		}
		li := n.linkIndex(l.A, l.B)
		if li != int32(i) {
			t.Fatalf("step %d: linkIndex(%d,%d) = %d, want %d", step, l.A, l.B, li, i)
		}
		if rev := n.linkIndex(l.B, l.A); rev != int32(i) {
			t.Fatalf("step %d: reverse linkIndex(%d,%d) = %d, want %d", step, l.B, l.A, rev, i)
		}
	}
	for _, id := range g.NodeIDs() {
		neighbors := g.Neighbors(id)
		row := n.lt.adj[id]
		if len(row) != len(neighbors) {
			t.Fatalf("step %d: adj row of %d has %d entries, graph has %d neighbors", step, id, len(row), len(neighbors))
		}
		if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i].to < row[j].to }) {
			t.Fatalf("step %d: adj row of %d not sorted by neighbor", step, id)
		}
		want := append([]topology.NodeID(nil), neighbors...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i, e := range row {
			if e.to != want[i] {
				t.Fatalf("step %d: adj row of %d = %v at %d, want %v", step, id, e.to, i, want[i])
			}
			l := g.Links[e.link]
			if refKey(l.A, l.B) != refKey(id, e.to) {
				t.Fatalf("step %d: adj entry %d→%d carries link %d (%d–%d)", step, id, e.to, e.link, l.A, l.B)
			}
		}
		if got, want := n.NodeFailed(id), m.down[id]; got != want {
			t.Fatalf("step %d: NodeFailed(%d) = %v, ref %v", step, id, got, want)
		}
		if got := n.nodeDown[id]; got != m.down[id] {
			t.Fatalf("step %d: dense nodeDown[%d] = %v, ref %v", step, id, got, m.down[id])
		}
	}
	if len(m.impaired) == 0 {
		if n.impair != nil {
			t.Fatalf("step %d: impair mirror non-nil with no impairments (healthy fast path lost)", step)
		}
	} else {
		if n.ImpairedLinks() != len(m.impaired) {
			t.Fatalf("step %d: ImpairedLinks = %d, ref %d", step, n.ImpairedLinks(), len(m.impaired))
		}
		for i, l := range g.Links {
			if got, want := n.impair[i] != nil, m.impaired[refKey(l.A, l.B)]; got != want {
				t.Fatalf("step %d: dense impair[%d] (%d–%d) present=%v, ref %v", step, i, l.A, l.B, got, want)
			}
		}
	}
}

// TestLinkTableMatchesReference drives a seeded random schedule of fault
// and topology operations — link fail/restore, node crash/recover,
// impair/clear, link growth plus InvalidateTopology — comparing the
// dense adjacency/failure/impairment tables against the map reference
// after every operation.
func TestLinkTableMatchesReference(t *testing.T) {
	rng := sim.NewRNG(20260806)
	g := topology.GenerateHierarchy(topology.HierarchyConfig{
		Tier1: 2, Tier2: 3, Stubs: 6,
		MultihomeProb: 0.5, PeerProb: 0.3,
		BaseLatency: 5 * sim.Millisecond,
	}, rng.Fork())
	n := New(sim.NewScheduler(), g)
	ref := newRefModel()
	ids := g.NodeIDs()
	nextID := ids[len(ids)-1] + 1

	pickLink := func() topology.Link { return g.Links[rng.Intn(len(g.Links))] }
	pickNode := func() topology.NodeID { return ids[rng.Intn(len(ids))] }

	ref.checkAgainst(t, n, -1)
	for step := 0; step < 400; step++ {
		switch rng.Intn(8) {
		case 0:
			l := pickLink()
			n.FailLink(l.A, l.B)
			ref.failed[refKey(l.A, l.B)] = true
		case 1:
			l := pickLink()
			n.RestoreLink(l.A, l.B)
			delete(ref.failed, refKey(l.A, l.B))
		case 2:
			id := pickNode()
			n.FailNode(id)
			ref.down[id] = true
		case 3:
			id := pickNode()
			n.RecoverNode(id)
			delete(ref.down, id)
		case 4:
			l := pickLink()
			n.ImpairLink(l.A, l.B, LinkImpairment{Corrupt: 0.1}, rng.Fork())
			ref.impaired[refKey(l.A, l.B)] = true
		case 5:
			l := pickLink()
			n.ClearImpairment(l.A, l.B)
			delete(ref.impaired, refKey(l.A, l.B))
		case 6:
			// Grow the topology: a new stub homed onto an existing node,
			// then the rebuild the growth contract requires. Fault state
			// must survive the rebuild (the maps are the source of truth).
			home := pickNode()
			g.AddNode(nextID, topology.Stub, 3)
			g.AddLink(nextID, home, topology.CustomerOf, 5*sim.Millisecond, 1)
			ids = append(ids, nextID)
			nextID++
			n.InvalidateTopology()
		case 7:
			// A new link between existing nodes, same rebuild contract.
			a, b := pickNode(), pickNode()
			if a == b {
				continue
			}
			if _, exists := g.LinkBetween(a, b); exists {
				continue
			}
			g.AddLink(a, b, topology.PeerOf, 5*sim.Millisecond, 1)
			n.InvalidateTopology()
		}
		ref.checkAgainst(t, n, step)
	}
}

// A rebuild with every fault type active must re-derive all three dense
// mirrors from their maps, not lose state.
func TestInvalidateTopologyPreservesFaults(t *testing.T) {
	rng := sim.NewRNG(7)
	g := topology.GenerateHierarchy(topology.HierarchyConfig{
		Tier1: 1, Tier2: 2, Stubs: 4,
		MultihomeProb: 0.5, PeerProb: 0.3,
		BaseLatency: 5 * sim.Millisecond,
	}, rng)
	n := New(sim.NewScheduler(), g)
	ref := newRefModel()

	l0, l1 := g.Links[0], g.Links[1]
	n.FailLink(l0.A, l0.B)
	ref.failed[refKey(l0.A, l0.B)] = true
	n.ImpairLink(l1.A, l1.B, LinkImpairment{Corrupt: 0.2}, rng.Fork())
	ref.impaired[refKey(l1.A, l1.B)] = true
	crash := g.NodeIDs()[0]
	n.FailNode(crash)
	ref.down[crash] = true

	ids := g.NodeIDs()
	g.AddNode(ids[len(ids)-1]+1, topology.Stub, 3)
	g.AddLink(ids[len(ids)-1]+1, ids[0], topology.CustomerOf, 5*sim.Millisecond, 1)
	n.InvalidateTopology()
	ref.checkAgainst(t, n, 0)
}
