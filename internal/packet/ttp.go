package packet

import "fmt"

// TTP flag bits.
const (
	FlagSYN uint8 = 1 << 0
	FlagACK uint8 = 1 << 1
	FlagFIN uint8 = 1 << 2
	FlagRST uint8 = 1 << 3
)

const ttpHeaderLen = 16

// TTP is the transport layer: ports, sequence numbers, and flags. Port
// numbers are exactly the "well-known port" signal whose overloading
// §IV-A warns about — middleboxes that infer application or service class
// from ports create the distortion incentives (tunneling, port-hopping)
// the experiments measure.
type TTP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Next             LayerType
	Window           uint16

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (t *TTP) LayerType() LayerType { return LayerTypeTTP }

// LayerContents implements Layer.
func (t *TTP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TTP) LayerPayload() []byte { return t.payload }

// NextLayerType implements DecodingLayer.
func (t *TTP) NextLayerType() LayerType { return t.Next }

// DecodeFrom implements DecodingLayer.
func (t *TTP) DecodeFrom(data []byte) error {
	if len(data) < ttpHeaderLen {
		return ErrTruncated
	}
	t.SrcPort = getU16(data)
	t.DstPort = getU16(data[2:])
	t.Seq = getU32(data[4:])
	t.Ack = getU32(data[8:])
	t.Flags = data[12]
	t.Next = LayerType(data[13])
	t.Window = getU16(data[14:])
	t.contents = data[:ttpHeaderLen]
	t.payload = data[ttpHeaderLen:]
	return nil
}

// SerializeTo implements SerializableLayer.
func (t *TTP) SerializeTo(b *SerializeBuffer) error {
	h := b.Prepend(ttpHeaderLen)
	putU16(h, t.SrcPort)
	putU16(h[2:], t.DstPort)
	putU32(h[4:], t.Seq)
	putU32(h[8:], t.Ack)
	h[12] = t.Flags
	h[13] = byte(t.Next)
	putU16(h[14:], t.Window)
	return nil
}

func (t *TTP) String() string {
	return fmt.Sprintf("TTP %d->%d seq=%d flags=%02x", t.SrcPort, t.DstPort, t.Seq, t.Flags)
}

const tunnelHeaderLen = 4

// Tunnel encapsulates one packet inside another. Tunnels are the paper's
// canonical consumer counter-move: "users route and tunnel around"
// firewalls and value-pricing restrictions (§I, §V-A2). A middlebox that
// classifies by the outer header cannot see the inner one.
type Tunnel struct {
	Flags uint8
	Inner LayerType
	ID    uint16

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (t *Tunnel) LayerType() LayerType { return LayerTypeTunnel }

// LayerContents implements Layer.
func (t *Tunnel) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *Tunnel) LayerPayload() []byte { return t.payload }

// NextLayerType implements DecodingLayer.
func (t *Tunnel) NextLayerType() LayerType { return t.Inner }

// DecodeFrom implements DecodingLayer.
func (t *Tunnel) DecodeFrom(data []byte) error {
	if len(data) < tunnelHeaderLen {
		return ErrTruncated
	}
	t.Flags = data[0]
	t.Inner = LayerType(data[1])
	t.ID = getU16(data[2:])
	t.contents = data[:tunnelHeaderLen]
	t.payload = data[tunnelHeaderLen:]
	return nil
}

// SerializeTo implements SerializableLayer.
func (t *Tunnel) SerializeTo(b *SerializeBuffer) error {
	h := b.Prepend(tunnelHeaderLen)
	h[0] = t.Flags
	h[1] = byte(t.Inner)
	putU16(h[2:], t.ID)
	return nil
}

const policyHeaderLen = 4

// Policy carries an in-band policy expression (see internal/policy for
// the language). Endpoints and consenting middleboxes use it to negotiate
// constraints — the explicit protocol for run-time choice §IV-D calls for.
type Policy struct {
	Inner      LayerType
	Expression string

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (p *Policy) LayerType() LayerType { return LayerTypePolicy }

// LayerContents implements Layer.
func (p *Policy) LayerContents() []byte { return p.contents }

// LayerPayload implements Layer.
func (p *Policy) LayerPayload() []byte { return p.payload }

// NextLayerType implements DecodingLayer.
func (p *Policy) NextLayerType() LayerType { return p.Inner }

// DecodeFrom implements DecodingLayer.
func (p *Policy) DecodeFrom(data []byte) error {
	if len(data) < policyHeaderLen {
		return ErrTruncated
	}
	exprLen := int(getU16(data[2:]))
	if policyHeaderLen+exprLen > len(data) {
		return fmt.Errorf("%w: policy expression %d bytes, %d available", ErrBadHeader, exprLen, len(data)-policyHeaderLen)
	}
	p.Inner = LayerType(data[0])
	p.Expression = string(data[policyHeaderLen : policyHeaderLen+exprLen])
	p.contents = data[:policyHeaderLen+exprLen]
	p.payload = data[policyHeaderLen+exprLen:]
	return nil
}

// SerializeTo implements SerializableLayer.
func (p *Policy) SerializeTo(b *SerializeBuffer) error {
	if len(p.Expression) > 0xffff {
		return fmt.Errorf("%w: policy expression too long", ErrBadHeader)
	}
	h := b.Prepend(policyHeaderLen + len(p.Expression))
	h[0] = byte(p.Inner)
	h[1] = 0
	putU16(h[2:], uint16(len(p.Expression)))
	copy(h[policyHeaderLen:], p.Expression)
	return nil
}
