// Package policy implements TPL, the tussle policy language: a small,
// safe expression-and-rule language in the tradition of KeyNote and the
// COPS policy objects the paper cites in §II-B. Parties use it to express
// constraints and requirements — firewall admission, acceptable-use
// rules, pricing tiers, routing preferences — and, exactly as the paper
// observes, the language's vocabulary bounds what tussle can be
// expressed: the Analyze function surfaces references outside a declared
// ontology.
//
// A policy document looks like:
//
//	policy "broadband-aup" {
//	    principal isp
//	    applies-to traffic
//	    rule web { when port == 80 || port == 443 then permit }
//	    rule no-servers {
//	        when direction == "inbound" && role != "business"
//	        then deny "servers require the business tier"
//	    }
//	    rule premium { when tos >= 4 then price 5.0 }
//	    default permit
//	}
//
// Rules are evaluated in order; the first whose condition holds decides.
package policy

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // one of ( ) { } [ ] ,
	tokOp    // == != <= >= < > && || ! in
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for errors
	line int
}

// lexError describes a tokenization failure with position.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("policy: line %d: %s", e.line, e.msg)
}

// lex tokenizes src. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			start := i + 1
			j := start
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '"':
						sb.WriteByte('"')
					case '\\':
						sb.WriteByte('\\')
					default:
						return nil, &lexError{line, fmt.Sprintf("unknown escape \\%c", src[j])}
					}
					j++
					continue
				}
				if src[j] == '\n' {
					return nil, &lexError{line, "newline in string literal"}
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, &lexError{line, "unterminated string literal"}
			}
			toks = append(toks, token{tokString, sb.String(), start, line})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i + 1
			seenDot := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i, line})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if word == "in" {
				toks = append(toks, token{tokOp, word, i, line})
			} else {
				toks = append(toks, token{tokIdent, word, i, line})
			}
			i = j
		case strings.ContainsRune("(){}[],", rune(c)):
			toks = append(toks, token{tokPunct, string(c), i, line})
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, src[i : i+2], i, line})
				i += 2
			} else if c == '=' {
				return nil, &lexError{line, "single '=' (use '==')"}
			} else {
				toks = append(toks, token{tokOp, string(c), i, line})
				i++
			}
		case c == '&' || c == '|':
			if i+1 < len(src) && src[i+1] == c {
				toks = append(toks, token{tokOp, src[i : i+2], i, line})
				i += 2
			} else {
				return nil, &lexError{line, fmt.Sprintf("single '%c'", c)}
			}
		default:
			return nil, &lexError{line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src), line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}
