package invariant

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// The CI sweep runs 500 trials per seed through cmd/tussle-check; this
// in-package test keeps a smaller always-on slice of the same property.
func TestSweepClean(t *testing.T) {
	for _, seed := range []uint64{42, 7} {
		res := Sweep(Config{Trials: 60, Seed: seed, Shrink: true})
		if !res.Clean() {
			f := res.Failures[0]
			t.Fatalf("seed %d: trial %d (seed %d) violated: %s", seed, f.Trial, f.Seed, f.Violations[0])
		}
		if res.Trials != 60 {
			t.Fatalf("Trials = %d, want 60", res.Trials)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	a := Sweep(Config{Trials: 10, Seed: 99})
	b := Sweep(Config{Trials: 10, Seed: 99})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same config, different results:\n%s\nvs\n%s", ja, jb)
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	sc := Generate(4242)
	a := runScenario(sc, nil, nil)
	b := runScenario(sc, nil, nil)
	ja, _ := json.Marshal(a.reg.Snapshot())
	jb, _ := json.Marshal(b.reg.Snapshot())
	if string(ja) != string(jb) {
		t.Fatal("same scenario, different registry snapshots")
	}
	if len(a.violations) != len(b.violations) {
		t.Fatalf("same scenario, different violations: %d vs %d", len(a.violations), len(b.violations))
	}
}

func TestTrialSeedDecorrelated(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := trialSeed(42, i)
		if seen[s] {
			t.Fatalf("trialSeed collision at trial %d", i)
		}
		seen[s] = true
	}
	if trialSeed(42, 0) == trialSeed(7, 0) {
		t.Fatal("different sweep seeds produced the same trial seed")
	}
}

func TestParseReproRejects(t *testing.T) {
	if _, err := ParseRepro([]byte(`{"invariant":"x"}`)); err == nil {
		t.Fatal("repro without a scenario accepted")
	}
	if _, err := ParseRepro([]byte(`{"bogus_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	sc := Generate(5)
	r := &Repro{Invariant: Conservation, Detail: "d", Scenario: sc}
	buf, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRepro(append(buf, []byte("{}")...)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data accepted: %v", err)
	}
	// A scenario referencing nodes outside its derived topology must be
	// rejected even though the JSON is well-formed.
	bad := *sc
	bad.Traffic = append([]Traffic(nil), sc.Traffic...)
	bad.Traffic[0].Src = 9999
	rb := &Repro{Invariant: Conservation, Scenario: &bad}
	buf, err = rb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRepro(buf); err == nil {
		t.Fatal("scenario with out-of-topology traffic endpoint accepted")
	}
}

func TestShrinkEventsSubsequence(t *testing.T) {
	sc := Generate(17)
	orig := len(sc.Plan.Events)
	// Predicate: the plan still contains at least one event of the first
	// event's kind.
	kind := sc.Plan.Events[0].Kind
	shrunk := ShrinkEvents(sc.Plan, func(p *chaos.Plan) bool {
		for i := range p.Events {
			if p.Events[i].Kind == kind {
				return true
			}
		}
		return false
	})
	if len(shrunk.Events) > orig {
		t.Fatalf("shrinking grew the plan: %d > %d", len(shrunk.Events), orig)
	}
	if len(shrunk.Events) != 1 || shrunk.Events[0].Kind != kind {
		t.Fatalf("expected exactly one %s event, got %d events", kind, len(shrunk.Events))
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk plan invalid: %v", err)
	}
}
