package packet

import "fmt"

// This file contains in-place header patching helpers used by forwarding
// elements: they mutate one field of an already-serialized TIP header and
// repair the checksum, avoiding a full decode/re-serialize on the fast
// path.

func tipHeaderLen(data []byte) (int, error) {
	if len(data) < tipMinHeader {
		return 0, ErrTruncated
	}
	hlen := int(data[0]&0x0f) * 8
	if hlen < tipMinHeader || hlen > len(data) {
		return 0, fmt.Errorf("%w: header length %d", ErrBadHeader, hlen)
	}
	return hlen, nil
}

func refreshChecksum(data []byte, hlen int) {
	data[6], data[7] = 0, 0
	ck := Checksum(data[:hlen])
	putU16(data[6:], ck)
}

// DecrementTTL decrements the TTL of a serialized TIP packet in place and
// repairs the checksum. It returns the new TTL; a return of 0 means the
// packet must be dropped.
func DecrementTTL(data []byte) (uint8, error) {
	hlen, err := tipHeaderLen(data)
	if err != nil {
		return 0, err
	}
	if data[4] == 0 {
		return 0, nil
	}
	data[4]--
	refreshChecksum(data, hlen)
	return data[4], nil
}

// SetDst overwrites the destination address of a serialized TIP packet in
// place and repairs the checksum. Scale traffic generators use it to
// retarget one pre-serialized template packet per source instead of
// re-serializing every send.
func SetDst(data []byte, dst Addr) error {
	hlen, err := tipHeaderLen(data)
	if err != nil {
		return err
	}
	putAddr(data[12:], dst)
	refreshChecksum(data, hlen)
	return nil
}

// AdvanceSourceRoute increments the source-route pointer of a serialized
// TIP packet in place (repairing the checksum) and returns the next
// waypoint after the advance, or AddrNone when the route is exhausted.
// It returns ok=false when the packet carries no source route.
func AdvanceSourceRoute(data []byte) (next Addr, ok bool, err error) {
	hlen, err := tipHeaderLen(data)
	if err != nil {
		return AddrNone, false, err
	}
	opts := data[tipMinHeader:hlen]
	for len(opts) > 0 {
		kind := opts[0]
		if kind == optEnd {
			return AddrNone, false, nil
		}
		if kind == optNop {
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return AddrNone, false, fmt.Errorf("%w: truncated option", ErrBadHeader)
		}
		olen := int(opts[1])
		if olen < 2 || olen > len(opts) {
			return AddrNone, false, fmt.Errorf("%w: option length", ErrBadHeader)
		}
		if kind == optSourceRoute {
			body := opts[2:olen]
			if len(body) < 1 {
				return AddrNone, false, fmt.Errorf("%w: source route", ErrBadHeader)
			}
			nhops := (len(body) - 1) / 4
			ptr := int(body[0])
			if ptr >= nhops {
				return AddrNone, false, nil
			}
			body[0]++
			refreshChecksum(data, hlen)
			if ptr+1 >= nhops {
				return AddrNone, true, nil
			}
			return getAddr(body[1+4*(ptr+1):]), true, nil
		}
		opts = opts[olen:]
	}
	return AddrNone, false, nil
}

// PatchTTPSeq overwrites the Seq field of the TTP header riding a
// serialized TIP packet, in place. The TIP checksum covers only the TIP
// header bytes, so patching transport fields needs no checksum repair;
// wire senders use this to stamp per-segment sequence numbers into
// prebuilt per-path header templates.
func PatchTTPSeq(data []byte, seq uint32) error {
	hlen, err := tipHeaderLen(data)
	if err != nil {
		return err
	}
	if len(data) < hlen+ttpHeaderLen {
		return ErrTruncated
	}
	putU32(data[hlen+4:], seq)
	return nil
}

// PatchTTPAck overwrites the Ack and Window (path echo) fields of the
// TTP header riding a serialized TIP packet, in place — the wire
// receiver's per-ACK patch into a prebuilt template. Like PatchTTPSeq,
// no checksum repair is needed.
func PatchTTPAck(data []byte, ack uint32, window uint16) error {
	hlen, err := tipHeaderLen(data)
	if err != nil {
		return err
	}
	if len(data) < hlen+ttpHeaderLen {
		return ErrTruncated
	}
	putU32(data[hlen+8:], ack)
	putU16(data[hlen+14:], window)
	return nil
}

// PeekSourceRoute returns the next unvisited waypoint of a serialized TIP
// packet without modifying it, or ok=false if there is no (unexhausted)
// source route.
func PeekSourceRoute(data []byte) (next Addr, ok bool) {
	hlen, err := tipHeaderLen(data)
	if err != nil {
		return AddrNone, false
	}
	opts := data[tipMinHeader:hlen]
	for len(opts) > 0 {
		kind := opts[0]
		if kind == optEnd {
			return AddrNone, false
		}
		if kind == optNop {
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return AddrNone, false
		}
		olen := int(opts[1])
		if olen < 2 || olen > len(opts) {
			return AddrNone, false
		}
		if kind == optSourceRoute {
			body := opts[2:olen]
			nhops := (len(body) - 1) / 4
			ptr := int(body[0])
			if ptr >= nhops {
				return AddrNone, false
			}
			return getAddr(body[1+4*ptr:]), true
		}
		opts = opts[olen:]
	}
	return AddrNone, false
}
