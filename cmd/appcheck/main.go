// Command appcheck audits an application design against the paper's
// application design guidelines (§VI-A: "we should generate 'application
// design guidelines' that would help designers avoid pitfalls, and deal
// with the tussles of success").
//
// Usage:
//
//	appcheck design.json
//	appcheck -example        # print a template design and exit
//
// The input is a JSON description of the design's choice points,
// mechanisms, third parties, and properties; the output is a pass/fail
// report per guideline with the paper's advice attached, and a non-zero
// exit status when any guideline fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

// designFile is the JSON schema for an application design.
type designFile struct {
	Name    string `json:"name"`
	Choices []struct {
		Name         string `json:"name"`
		Chooser      string `json:"chooser"` // user|isp|government|rights-holder|content-provider|private-network
		Alternatives int    `json:"alternatives"`
		Visible      bool   `json:"visible"`
		CostExposed  bool   `json:"cost_exposed"`
	} `json:"choices"`
	Mechanisms []struct {
		Name    string   `json:"name"`
		Space   string   `json:"space"`
		Couples []string `json:"couples,omitempty"`
		Visible bool     `json:"visible"`
	} `json:"mechanisms"`
	ThirdParties []struct {
		Name       string `json:"name"`
		Selectable bool   `json:"selectable"`
	} `json:"third_parties"`
	UserControlsNetworkFeatures bool `json:"user_controls_network_features"`
	IntermediariesVisible       bool `json:"intermediaries_visible"`
	EndToEndEncryption          bool `json:"end_to_end_encryption"`
	NeedsValueFlow              bool `json:"needs_value_flow"`
	HasValueFlow                bool `json:"has_value_flow"`
}

var kinds = map[string]core.Kind{
	"user": core.User, "isp": core.ISP, "government": core.Government,
	"rights-holder": core.RightsHolder, "content-provider": core.ContentProvider,
	"private-network": core.PrivateNetwork,
}

func toAppDesign(df *designFile) (*core.AppDesign, error) {
	app := &core.AppDesign{
		Design:                      core.Design{Name: df.Name},
		UserControlsNetworkFeatures: df.UserControlsNetworkFeatures,
		IntermediariesVisible:       df.IntermediariesVisible,
		EndToEndEncryption:          df.EndToEndEncryption,
		NeedsValueFlow:              df.NeedsValueFlow,
		HasValueFlow:                df.HasValueFlow,
	}
	for _, c := range df.Choices {
		kind, ok := kinds[c.Chooser]
		if !ok {
			return nil, fmt.Errorf("choice %q: unknown chooser %q", c.Name, c.Chooser)
		}
		app.Choices = append(app.Choices, core.ChoicePoint{
			Name: c.Name, Chooser: kind, Alternatives: c.Alternatives,
			Visible: c.Visible, CostExposed: c.CostExposed,
		})
	}
	for _, m := range df.Mechanisms {
		mech := &core.Mechanism{Name: m.Name, Space: core.Space(m.Space), Visible: m.Visible}
		for _, sp := range m.Couples {
			mech.Couples = append(mech.Couples, core.Space(sp))
		}
		app.Mechanisms = append(app.Mechanisms, mech)
	}
	for _, tp := range df.ThirdParties {
		app.ThirdParties = append(app.ThirdParties, core.ThirdParty{Name: tp.Name, Selectable: tp.Selectable})
	}
	return app, nil
}

const exampleDesign = `{
  "name": "example-mail-app",
  "choices": [
    {"name": "smtp-server", "chooser": "user", "alternatives": 8, "visible": true, "cost_exposed": true},
    {"name": "pop-server", "chooser": "user", "alternatives": 4, "visible": true, "cost_exposed": true}
  ],
  "mechanisms": [
    {"name": "server-selection", "space": "apps", "visible": true},
    {"name": "spam-filtering", "space": "apps", "visible": true}
  ],
  "third_parties": [
    {"name": "reputation-service", "selectable": true}
  ],
  "user_controls_network_features": true,
  "intermediaries_visible": true,
  "end_to_end_encryption": true,
  "needs_value_flow": false,
  "has_value_flow": false
}
`

func main() {
	example := flag.Bool("example", false, "print a template design and exit")
	flag.Parse()
	if *example {
		fmt.Print(exampleDesign)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: appcheck design.json | appcheck -example")
		os.Exit(64)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	var df designFile
	if err := json.Unmarshal(raw, &df); err != nil {
		fatal("parse %s: %v", flag.Arg(0), err)
	}
	app, err := toAppDesign(&df)
	if err != nil {
		fatal("%v", err)
	}
	report := core.CheckGuidelines(app)
	fmt.Printf("design %q: %d/%d guidelines satisfied (%.0f%%)\n\n",
		app.Name, report.Passed(), len(report.Findings), report.Score()*100)
	failed := 0
	for _, f := range report.Findings {
		mark := "PASS"
		if !f.Passed {
			mark = "FAIL"
			failed++
		}
		fmt.Printf("  [%s] %-24s %s\n", mark, f.Rule, f.Detail)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "appcheck: "+format+"\n", args...)
	os.Exit(1)
}
