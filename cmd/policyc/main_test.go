package main

import (
	"testing"

	"repro/internal/policy"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want policy.Value
	}{
		{"42", policy.Num(42)},
		{"-1.5", policy.Num(-1.5)},
		{"true", policy.Bool(true)},
		{"false", policy.Bool(false)},
		{"hello", policy.Str("hello")},
		{"80x", policy.Str("80x")},
	}
	for _, c := range cases {
		if got := parseValue(c.in); !got.Equal(c.want) {
			t.Errorf("parseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDefaultOf(t *testing.T) {
	withDefault, err := policy.Parse(`policy "a" { default permit }`)
	if err != nil {
		t.Fatal(err)
	}
	if defaultOf(withDefault) != "permit" {
		t.Fatal("explicit default wrong")
	}
	without, err := policy.Parse(`policy "b" { rule r { when x == 1 then permit } }`)
	if err != nil {
		t.Fatal(err)
	}
	if defaultOf(without) != "deny (implicit)" {
		t.Fatal("implicit default wrong")
	}
}
