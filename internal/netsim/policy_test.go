package netsim

import (
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file pins the compiled source-route admission policy: the `paid`
// policy is behaviorally identical to the legacy
// RequirePaymentForSourceRoute boolean, richer vocabularies steer
// routing, out-of-vocabulary references are refused at install time, and
// an installed policy keeps the forward hop zero-alloc.

func srcRoutedPkt(t *testing.T, pay bool, via uint16) []byte {
	t.Helper()
	tip := &packet.TIP{
		TTL: 8, Proto: packet.LayerTypeRaw,
		Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1),
		SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(via, 0)}},
	}
	if pay {
		tip.Payment = &packet.PaymentOption{Payer: tip.Src, AmountMilli: 100}
	}
	data, err := packet.Serialize(tip, &packet.Raw{Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A `paid` policy must reproduce the legacy payment boolean decision for
// decision: honored when a voucher is present, denied otherwise (with
// the packet still forwarded by the node's own routing).
func TestSourceRoutePolicyPaidEquivalence(t *testing.T) {
	n, sched := chainNet(t)
	for id := topology.NodeID(1); id <= 4; id++ {
		nd := n.Node(id)
		nd.HonorSourceRoutes = true
		if err := nd.SetSourceRoutePolicy("paid"); err != nil {
			t.Fatal(err)
		}
	}
	trUnpaid := n.Send(1, srcRoutedPkt(t, false, 3))
	trPaid := n.Send(1, srcRoutedPkt(t, true, 3))
	sched.Run()
	if !trUnpaid.Delivered || !trPaid.Delivered {
		t.Fatalf("deliveries: unpaid=%v paid=%v", trUnpaid.Delivered, trPaid.Delivered)
	}
	if n.Node(1).Counters.Get("srcroute_denied") == 0 {
		t.Fatal("unpaid source route not denied by policy")
	}
	if n.Node(1).Counters.Get("srcroute_honored") == 0 {
		t.Fatal("paid source route not honored by policy")
	}
}

// diamondNet is the 1-{2,3}-4 topology from TestSourceRouteHonored:
// default routing prefers via 2, a source route can force via 3.
func diamondNet(t *testing.T) (*Network, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	g := topology.NewGraph()
	for i := 1; i <= 4; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(2, 4, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(1, 3, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(3, 4, topology.PeerOf, sim.Millisecond, 1)
	n := New(sched, g)
	routes := map[topology.NodeID]map[uint16]topology.NodeID{
		1: {2: 2, 3: 3, 4: 2},
		2: {1: 1, 4: 4, 3: 1},
		3: {1: 1, 4: 4, 2: 1},
		4: {2: 2, 3: 3, 1: 2},
	}
	for id, tbl := range routes {
		tbl := tbl
		nd := n.Node(id)
		nd.HonorSourceRoutes = true
		nd.Route = func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
			nh, ok := tbl[dst.Provider()]
			return nh, ok
		}
	}
	return n, sched
}

// A vocabulary-rich policy steers routing: nodes that refuse waypoint
// provider 3 push the packet back onto default forwarding (via 2), while
// permissive nodes honor the detour.
func TestSourceRoutePolicyWaypointSteering(t *testing.T) {
	n, sched := diamondNet(t)
	for id := topology.NodeID(1); id <= 4; id++ {
		if err := n.Node(id).SetSourceRoutePolicy("!(waypoint-provider == 3) || paid"); err != nil {
			t.Fatal(err)
		}
	}
	trUnpaid := n.Send(1, srcRoutedPkt(t, false, 3))
	trPaid := n.Send(1, srcRoutedPkt(t, true, 3))
	sched.Run()
	if !trUnpaid.Delivered || !trPaid.Delivered {
		t.Fatalf("deliveries: unpaid=%v paid=%v (%s/%s)",
			trUnpaid.Delivered, trPaid.Delivered, trUnpaid.DropReason, trPaid.DropReason)
	}
	if p := trUnpaid.Path(); p[1] != 2 {
		t.Fatalf("denied-waypoint path = %v, want default via 2", p)
	}
	if p := trPaid.Path(); p[1] != 3 {
		t.Fatalf("paid-waypoint path = %v, want forced via 3", p)
	}
}

// Out-of-vocabulary references are install-time errors, not per-packet
// surprises; parse errors surface too, and the empty string clears.
func TestSourceRoutePolicyInstall(t *testing.T) {
	nd := &Node{}
	if err := nd.SetSourceRoutePolicy("port == 80"); err == nil ||
		!strings.Contains(err.Error(), `"port"`) {
		t.Fatalf("out-of-vocabulary install error = %v", err)
	}
	if err := nd.SetSourceRoutePolicy("paid &&"); err == nil {
		t.Fatal("parse error not surfaced at install")
	}
	if err := nd.SetSourceRoutePolicy("paid && ttl > 2"); err != nil {
		t.Fatal(err)
	}
	if got := nd.SourceRoutePolicyText(); got != "(paid && (ttl > 2))" {
		t.Fatalf("canonical policy text = %q", got)
	}
	if err := nd.SetSourceRoutePolicy(""); err != nil || nd.SourceRoutePolicyText() != "" {
		t.Fatalf("clearing: err=%v text=%q", err, nd.SourceRoutePolicyText())
	}
}

// An installed policy must not break the steady-state allocation
// contract: policy evaluation runs on the pooled VM through caller-owned
// slots, so a source-routed packet costs the same constant as before.
func TestSourceRoutePolicyZeroAllocHop(t *testing.T) {
	if raceEnabled {
		// The race detector makes sync.Pool drop 25% of Puts by design;
		// at seven pooled VM round-trips per send the bound below is
		// then noise, not signal.
		t.Skip("pooled-VM alloc bound is not meaningful under -race")
	}
	nodes := 8
	n, sched := linearNet(t, nodes)
	n.TraceEventCap = nodes + 2
	for id := topology.NodeID(1); id <= topology.NodeID(nodes); id++ {
		nd := n.Node(id)
		nd.HonorSourceRoutes = true
		if err := nd.SetSourceRoutePolicy("paid && ttl > 0 && waypoint-provider < 100"); err != nil {
			t.Fatal(err)
		}
	}
	tip := &packet.TIP{
		TTL: uint8(nodes + 8), Proto: packet.LayerTypeRaw,
		Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(uint16(nodes), 1),
		SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(4, 0)}},
		Payment:     &packet.PaymentOption{Payer: packet.MakeAddr(1, 1), AmountMilli: 100},
	}
	pristine, err := packet.Serialize(tip, &packet.Raw{Data: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(pristine))
	send := func() {
		copy(buf, pristine) // restore TTL and source-route pointer
		tr := n.Send(1, buf)
		sched.Run()
		if !tr.Delivered {
			t.Fatalf("drop: %s", tr.DropReason)
		}
	}
	for i := 0; i < 10; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(100, send); allocs > 2 {
		t.Fatalf("policy-gated packet costs %.1f allocs, want <= 2 (Trace + event slab)", allocs)
	}
}
