// Package scenarios provides ready-made tussle-engine scenarios — the
// paper's §I examples as executable move/counter-move games. They back
// cmd/tussled and serve as worked examples of programming the core
// engine.
package scenarios

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Names lists the available scenarios in stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs a scenario by name.
func Build(name string) (*core.Engine, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenarios: unknown scenario %q (have %v)", name, Names())
	}
	return mk(), nil
}

var registry = map[string]func() *core.Engine{
	"value-pricing": ValuePricing,
	"encryption":    Encryption,
	"firewall":      Firewall,
	"filesharing":   FileSharing,
}

// ValuePricing is the §V-A2 escalation: server ban → tunnel → deep
// inspection → encrypted tunnel. Each counter-move is a distortion —
// the design gave the parties no better channel.
func ValuePricing() *core.Engine {
	isp := &core.Stakeholder{Name: "isp", Kind: core.ISP}
	user := &core.Stakeholder{Name: "user", Kind: core.User}
	isp.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		switch {
		case !st.Has("server-ban"):
			return &core.Move{Deploy: &core.Mechanism{
				Name: "server-ban", Space: "economics", Visible: true, Couples: []core.Space{"apps"},
			}, Note: "value pricing: servers need the business tier"}
		case st.Has("tunnel") && !st.Has("dpi"):
			return &core.Move{Deploy: &core.Mechanism{
				Name: "dpi", Space: "economics", Visible: false, Couples: []core.Space{"apps", "trust"},
			}, Note: "deep inspection to find tunnels"}
		}
		return nil
	}
	user.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		switch {
		case st.Has("server-ban") && !st.Has("tunnel"):
			return &core.Move{Deploy: &core.Mechanism{
				Name: "tunnel", Space: "economics", Distortion: true,
			}, Note: "tunnel to disguise the ports being used"}
		case st.Has("dpi") && !st.Has("encrypted-tunnel"):
			return &core.Move{Deploy: &core.Mechanism{
				Name: "encrypted-tunnel", Space: "economics", Distortion: true,
			}, Note: "encrypt so inspection sees nothing"}
		}
		return nil
	}
	payoff := func(st *core.State) map[string]float64 {
		u := map[string]float64{"isp": 2, "user": 2}
		if st.Has("server-ban") {
			u["isp"], u["user"] = 3, 0
			if st.Has("tunnel") && !st.Has("dpi") {
				u["isp"], u["user"] = 1, 2
			}
			if st.Has("tunnel") && st.Has("dpi") {
				u["isp"], u["user"] = 2.5, 0.5
			}
			if st.Has("encrypted-tunnel") {
				u["isp"], u["user"] = 1, 2
			}
		}
		return u
	}
	return core.NewEngine(payoff, isp, user)
}

// Encryption is the §VI-A escalation: wiretap → end-to-end encryption →
// block-encrypted → competition disciplines the block.
func Encryption() *core.Engine {
	gov := &core.Stakeholder{Name: "government", Kind: core.Government}
	user := &core.Stakeholder{Name: "user", Kind: core.User}
	isp := &core.Stakeholder{Name: "isp", Kind: core.ISP}
	gov.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		if !st.Has("wiretap") {
			return &core.Move{Deploy: &core.Mechanism{
				Name: "wiretap", Space: "trust", Visible: false, Couples: []core.Space{"apps"},
			}, Note: "data capture site in the network"}
		}
		return nil
	}
	user.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		if st.Has("wiretap") && !st.Has("e2e-encryption") {
			return &core.Move{Deploy: &core.Mechanism{
				Name: "e2e-encryption", Space: "trust", Visible: true,
			}, Note: "peeking is irresistible; encrypt end to end"}
		}
		return nil
	}
	isp.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		if st.Has("e2e-encryption") && !st.Has("block-encrypted") && st.Round < 6 {
			return &core.Move{Deploy: &core.Mechanism{
				Name: "block-encrypted", Space: "trust", Visible: true, Couples: []core.Space{"economics"},
			}, Note: "refuse to carry encrypted data"}
		}
		if st.Has("block-encrypted") && st.Round >= 6 {
			return &core.Move{Withdraw: "block-encrypted", Note: "competition disciplines the block"}
		}
		return nil
	}
	payoff := func(st *core.State) map[string]float64 {
		u := map[string]float64{"government": 1, "user": 2, "isp": 2}
		if st.Has("wiretap") && !st.Has("e2e-encryption") {
			u["government"], u["user"] = 3, 1
		}
		if st.Has("e2e-encryption") {
			u["government"] = 0.5
			if st.Has("block-encrypted") {
				u["user"], u["isp"] = 0, 1 // customers defect
			}
		}
		return u
	}
	return core.NewEngine(payoff, gov, user, isp)
}

// Firewall is the §V-B tussle over who sets firewall policy: the
// port-based device provokes tunnels; replacing it with a trust-aware
// firewall resolves the standoff inside the design.
func Firewall() *core.Engine {
	admin := &core.Stakeholder{Name: "admin", Kind: core.PrivateNetwork}
	user := &core.Stakeholder{Name: "user", Kind: core.User}
	admin.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		if !st.Has("port-firewall") && !st.Has("trust-firewall") {
			return &core.Move{Deploy: &core.Mechanism{
				Name: "port-firewall", Space: "trust", Visible: true, Couples: []core.Space{"apps"},
			}, Note: "that which is not permitted is forbidden"}
		}
		if st.Has("user-tunnel") && !st.Has("trust-firewall") {
			return &core.Move{
				Withdraw: "port-firewall",
				Deploy: &core.Mechanism{
					Name: "trust-firewall", Space: "trust", Visible: true,
				},
				Note: "mediate on who communicates, not which ports",
			}
		}
		return nil
	}
	user.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		if st.Has("port-firewall") && !st.Has("user-tunnel") {
			return &core.Move{Deploy: &core.Mechanism{
				Name: "user-tunnel", Space: "trust", Distortion: true,
			}, Note: "route and tunnel around it"}
		}
		if st.Has("trust-firewall") && st.Has("user-tunnel") {
			return &core.Move{Withdraw: "user-tunnel", Note: "identified access works; tunnel unneeded"}
		}
		return nil
	}
	payoff := func(st *core.State) map[string]float64 {
		u := map[string]float64{"admin": 1, "user": 1}
		switch {
		case st.Has("trust-firewall"):
			u["admin"], u["user"] = 2.5, 2
		case st.Has("port-firewall") && st.Has("user-tunnel"):
			u["admin"], u["user"] = 0.5, 1.5
		case st.Has("port-firewall"):
			u["admin"], u["user"] = 2, 0.5
		}
		return u
	}
	return core.NewEngine(payoff, admin, user)
}

// FileSharing is the §I rights-holder tussle: central index → takedown →
// distributed index → per-file takedowns → the venue shifts to
// licensing (a non-technical move the engine models as a mechanism).
func FileSharing() *core.Engine {
	users := &core.Stakeholder{Name: "sharers", Kind: core.User}
	rights := &core.Stakeholder{Name: "rights-holder", Kind: core.RightsHolder}
	users.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		switch {
		case !st.Has("central-index") && !st.Has("distributed-index"):
			return &core.Move{Deploy: &core.Mechanism{
				Name: "central-index", Space: "content", Visible: true,
			}, Note: "napster: one index, mutual aid"}
		case st.Has("index-takedown") && !st.Has("distributed-index"):
			return &core.Move{
				Withdraw: "central-index",
				Deploy: &core.Mechanism{
					Name: "distributed-index", Space: "content", Visible: true,
				},
				Note: "no single point for the next injunction",
			}
		}
		return nil
	}
	rights.Strat = func(self *core.Stakeholder, st *core.State) *core.Move {
		switch {
		case st.Has("central-index") && !st.Has("index-takedown"):
			return &core.Move{Deploy: &core.Mechanism{
				Name: "index-takedown", Space: "content", Visible: true,
			}, Note: "injunction against the index operator"}
		case st.Has("distributed-index") && !st.Has("licensed-store"):
			return &core.Move{Deploy: &core.Mechanism{
				Name: "licensed-store", Space: "content", Visible: true, Couples: []core.Space{"economics"},
			}, Note: "compete: convenient licensed distribution"}
		}
		return nil
	}
	payoff := func(st *core.State) map[string]float64 {
		u := map[string]float64{"sharers": 1, "rights-holder": 1}
		switch {
		case st.Has("licensed-store"):
			u["sharers"], u["rights-holder"] = 2, 2.5 // the market resolution
		case st.Has("distributed-index"):
			u["sharers"], u["rights-holder"] = 2.5, 0
		case st.Has("central-index") && !st.Has("index-takedown"):
			u["sharers"], u["rights-holder"] = 3, 0
		case st.Has("index-takedown"):
			u["sharers"], u["rights-holder"] = 0.5, 2
		}
		return u
	}
	return core.NewEngine(payoff, users, rights)
}
