package invariant

import (
	"repro/internal/chaos"
)

// ddmin is delta-debugging minimization over a list: it returns a
// subsequence of items for which fails still returns true, removing
// chunks of halving size until no single-element removal helps. fails
// must be deterministic; if fails(items) is false the input is returned
// unchanged. The result is always a subsequence of (and never longer
// than) the input.
func ddmin[T any](items []T, fails func([]T) bool) []T {
	if len(items) == 0 || !fails(items) {
		return items
	}
	cur := items
	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		shrunk := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]T, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if fails(cand) {
				cur = cand
				shrunk = true
				// stay at the same start: the next chunk slid into place
			} else {
				start = end
			}
		}
		if chunk == 1 {
			if !shrunk {
				break // single-element removals exhausted: 1-minimal
			}
			// re-run at granularity 1 until a full pass removes nothing
		} else {
			chunk /= 2
		}
	}
	return cur
}

// ShrinkEvents minimizes a chaos plan's event list while fails keeps
// returning true for the candidate plan. The result reuses the plan's
// name and seed with a subsequence of its events; if fails rejects the
// full plan, the input is returned as-is. Exported for the shrink
// round-trip fuzz target.
func ShrinkEvents(p *chaos.Plan, fails func(*chaos.Plan) bool) *chaos.Plan {
	withEvents := func(evs []chaos.Event) *chaos.Plan {
		c := *p
		c.Events = evs
		return &c
	}
	evs := ddmin(p.Events, func(cand []chaos.Event) bool {
		return fails(withEvents(cand))
	})
	return withEvents(evs)
}

// shrinkClone builds a scenario candidate sharing sc's topology and
// seeds but with the given plan events and traffic matrix.
func (sc *Scenario) shrinkClone(events []chaos.Event, traffic []Traffic) *Scenario {
	c := *sc
	p := *sc.Plan
	p.Events = events
	c.Plan = &p
	c.Traffic = traffic
	return &c
}

// ShrinkScenario minimizes a failing scenario to a reproducer for the
// named invariant: first the fault-plan events, then the traffic matrix,
// each by delta debugging, re-running the (deterministic) scenario for
// every candidate. maxRuns bounds total candidate executions; when the
// budget runs out remaining candidates are treated as non-failing, so
// the result is still a valid (just less minimal) reproducer. The hooks
// are re-applied on every run, which is how canary tests shrink their
// deliberately-sabotaged trials.
func ShrinkScenario(sc *Scenario, enabled map[string]bool, invariant string, hk *hooks, maxRuns int) *Repro {
	if maxRuns <= 0 {
		maxRuns = 400
	}
	runs := 0
	var lastViolations []Violation
	reproduces := func(cand *Scenario) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		vs := runScenario(cand, enabled, hk).violations
		for _, v := range vs {
			if v.Invariant == invariant {
				lastViolations = vs
				return true
			}
		}
		return false
	}

	events := ddmin(sc.Plan.Events, func(evs []chaos.Event) bool {
		return reproduces(sc.shrinkClone(evs, sc.Traffic))
	})
	traffic := ddmin(sc.Traffic, func(trs []Traffic) bool {
		return reproduces(sc.shrinkClone(events, trs))
	})
	minimal := sc.shrinkClone(events, traffic)

	// Final authoritative run: capture the violation detail from the
	// minimized scenario itself (the ddmin bookkeeping may have last run
	// a different candidate).
	detail := ""
	final := runScenario(minimal, enabled, hk).violations
	if len(final) == 0 {
		final = lastViolations
	}
	for _, v := range final {
		if v.Invariant == invariant {
			detail = v.Detail
			break
		}
	}
	return &Repro{Invariant: invariant, Detail: detail, Scenario: minimal}
}
