// Package gametheory implements the formal model of tussle that §II-B of
// the paper describes: normal-form games ranging "from purely conflicting
// games (so called zero-sum games) ... to coordination games where actors
// have a common goal but fail to coordinate", solvers for their
// equilibria, adaptation dynamics (best response, fictitious play,
// replicator — the bounded-rationality extension the paper cites), and
// the Vickrey/VCG mechanisms that "construct rules of a game that
// guaranteed tussle-free actor networks ... revolving around revealing
// truthful information".
package gametheory

import (
	"fmt"
	"math"
)

// Game is a two-player normal-form game. A[i][j] is the row player's
// payoff and B[i][j] the column player's when row plays i and column
// plays j.
type Game struct {
	Name string
	A, B [][]float64
}

// New validates and builds a game. It panics on ragged or empty
// matrices — game construction errors are programming bugs.
func New(name string, a, b [][]float64) *Game {
	if len(a) == 0 || len(a[0]) == 0 {
		panic("gametheory: empty payoff matrix")
	}
	if len(a) != len(b) {
		panic("gametheory: payoff matrices disagree on rows")
	}
	for i := range a {
		if len(a[i]) != len(a[0]) || len(b[i]) != len(a[0]) {
			panic("gametheory: ragged payoff matrix")
		}
	}
	return &Game{Name: name, A: a, B: b}
}

// ZeroSum builds a zero-sum game from the row player's payoffs.
func ZeroSum(name string, a [][]float64) *Game {
	b := make([][]float64, len(a))
	for i := range a {
		b[i] = make([]float64, len(a[i]))
		for j := range a[i] {
			b[i][j] = -a[i][j]
		}
	}
	return New(name, a, b)
}

// Rows and Cols report the strategy space sizes.
func (g *Game) Rows() int { return len(g.A) }
func (g *Game) Cols() int { return len(g.A[0]) }

// IsZeroSum reports whether payoffs sum to zero everywhere.
func (g *Game) IsZeroSum() bool {
	for i := range g.A {
		for j := range g.A[i] {
			if math.Abs(g.A[i][j]+g.B[i][j]) > 1e-12 {
				return false
			}
		}
	}
	return true
}

// Class is a coarse taxonomy of tussle games (§IV-D: "in some cases, the
// interests of the players are simply adverse ... But in many cases,
// players' interests are not adverse, but simply different").
type Class uint8

// Game classes.
const (
	// Conflict: strictly adverse interests (zero-sum).
	Conflict Class = iota
	// Coordination: some pure equilibrium is best for both players
	// simultaneously (common interest, incentive to align).
	Coordination
	// MixedMotive: neither — partially aligned, partially adverse.
	MixedMotive
)

func (c Class) String() string {
	switch c {
	case Conflict:
		return "conflict"
	case Coordination:
		return "coordination"
	default:
		return "mixed-motive"
	}
}

// Classify assigns a game to a tussle class.
func (g *Game) Classify() Class {
	if g.IsZeroSum() {
		return Conflict
	}
	// Coordination: a pure Nash equilibrium that is also the global
	// maximum for both players.
	maxA, maxB := math.Inf(-1), math.Inf(-1)
	for i := range g.A {
		for j := range g.A[i] {
			maxA = math.Max(maxA, g.A[i][j])
			maxB = math.Max(maxB, g.B[i][j])
		}
	}
	for _, eq := range g.PureNash() {
		if g.A[eq[0]][eq[1]] == maxA && g.B[eq[0]][eq[1]] == maxB {
			return Coordination
		}
	}
	return MixedMotive
}

// PureNash enumerates all pure-strategy Nash equilibria as (row, col)
// pairs.
func (g *Game) PureNash() [][2]int {
	var out [][2]int
	for i := range g.A {
		for j := range g.A[i] {
			best := true
			for i2 := range g.A {
				if g.A[i2][j] > g.A[i][j]+1e-12 {
					best = false
					break
				}
			}
			if !best {
				continue
			}
			for j2 := range g.B[i] {
				if g.B[i][j2] > g.B[i][j]+1e-12 {
					best = false
					break
				}
			}
			if best {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Mixed is a mixed strategy profile for a two-player game.
type Mixed struct {
	Row, Col []float64
	// Value is the row player's expected payoff at the profile.
	Value float64
}

// expected returns the two players' expected payoffs under (p, q).
func (g *Game) expected(p, q []float64) (float64, float64) {
	var ea, eb float64
	for i := range g.A {
		for j := range g.A[i] {
			w := p[i] * q[j]
			ea += w * g.A[i][j]
			eb += w * g.B[i][j]
		}
	}
	return ea, eb
}

// Nash2x2 computes a (possibly mixed) Nash equilibrium of a 2x2 game
// exactly: pure equilibria are returned if they exist; otherwise the
// indifference-condition mixed equilibrium.
func (g *Game) Nash2x2() (Mixed, error) {
	if g.Rows() != 2 || g.Cols() != 2 {
		return Mixed{}, fmt.Errorf("gametheory: Nash2x2 on %dx%d game", g.Rows(), g.Cols())
	}
	if eqs := g.PureNash(); len(eqs) > 0 {
		p := []float64{0, 0}
		q := []float64{0, 0}
		p[eqs[0][0]] = 1
		q[eqs[0][1]] = 1
		ea, _ := g.expected(p, q)
		return Mixed{Row: p, Col: q, Value: ea}, nil
	}
	// Row mixes to make column indifferent: p*B[0][0]+(1-p)*B[1][0] =
	// p*B[0][1]+(1-p)*B[1][1].
	denB := g.B[0][0] - g.B[0][1] - g.B[1][0] + g.B[1][1]
	denA := g.A[0][0] - g.A[1][0] - g.A[0][1] + g.A[1][1]
	if denB == 0 || denA == 0 {
		return Mixed{}, fmt.Errorf("gametheory: degenerate 2x2 game")
	}
	p := (g.B[1][1] - g.B[1][0]) / denB
	q := (g.A[1][1] - g.A[0][1]) / denA
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return Mixed{}, fmt.Errorf("gametheory: no interior equilibrium")
	}
	row := []float64{p, 1 - p}
	col := []float64{q, 1 - q}
	ea, _ := g.expected(row, col)
	return Mixed{Row: row, Col: col, Value: ea}, nil
}

// FictitiousPlay runs the classic learning dynamic for iters rounds and
// returns the empirical mixed strategies. For zero-sum games it converges
// to the game value (von Neumann); it is also the package's general
// m×n zero-sum solver.
func (g *Game) FictitiousPlay(iters int) Mixed {
	rowCounts := make([]float64, g.Rows())
	colCounts := make([]float64, g.Cols())
	// Start from the first strategies.
	rowCounts[0], colCounts[0] = 1, 1
	for t := 0; t < iters; t++ {
		// Row best-responds to the column empirical mix.
		bestI, bestV := 0, math.Inf(-1)
		for i := 0; i < g.Rows(); i++ {
			v := 0.0
			for j := 0; j < g.Cols(); j++ {
				v += colCounts[j] * g.A[i][j]
			}
			if v > bestV {
				bestV, bestI = v, i
			}
		}
		bestJ, bestW := 0, math.Inf(-1)
		for j := 0; j < g.Cols(); j++ {
			w := 0.0
			for i := 0; i < g.Rows(); i++ {
				w += rowCounts[i] * g.B[i][j]
			}
			if w > bestW {
				bestW, bestJ = w, j
			}
		}
		rowCounts[bestI]++
		colCounts[bestJ]++
	}
	p := normalize(rowCounts)
	q := normalize(colCounts)
	ea, _ := g.expected(p, q)
	return Mixed{Row: p, Col: q, Value: ea}
}

func normalize(v []float64) []float64 {
	total := 0.0
	for _, x := range v {
		total += x
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / total
	}
	return out
}

// Value approximates the zero-sum game value via fictitious play.
func (g *Game) Value(iters int) float64 {
	return g.FictitiousPlay(iters).Value
}

// Exploitability measures how far a profile is from equilibrium: the
// total gain available to the two players by unilateral best response.
// Zero means Nash.
func (g *Game) Exploitability(m Mixed) float64 {
	ea, eb := g.expected(m.Row, m.Col)
	bestA := math.Inf(-1)
	for i := 0; i < g.Rows(); i++ {
		v := 0.0
		for j := 0; j < g.Cols(); j++ {
			v += m.Col[j] * g.A[i][j]
		}
		bestA = math.Max(bestA, v)
	}
	bestB := math.Inf(-1)
	for j := 0; j < g.Cols(); j++ {
		w := 0.0
		for i := 0; i < g.Rows(); i++ {
			w += m.Row[i] * g.B[i][j]
		}
		bestB = math.Max(bestB, w)
	}
	return (bestA - ea) + (bestB - eb)
}

// Canonical tussle games used across the experiment suite.

// PrisonersDilemma: the TCP congestion-control tussle in miniature —
// cooperate (back off) or defect (blast). Defection dominates, the
// equilibrium is mutual defection, and social pressure alone sustains
// cooperation (§II-B's "system design perspectives" discussion).
func PrisonersDilemma() *Game {
	return New("prisoners-dilemma",
		[][]float64{{3, 0}, {5, 1}},
		[][]float64{{3, 5}, {0, 1}})
}

// MatchingPennies: pure conflict — the evader/inspector tussle
// (steganography vs detection, tunneling vs classification).
func MatchingPennies() *Game {
	return ZeroSum("matching-pennies", [][]float64{{1, -1}, {-1, 1}})
}

// StagHunt: a coordination tussle — both parties prefer joint deployment
// (of QoS, of multicast) but defect to the safe status quo without
// assurance.
func StagHunt() *Game {
	return New("stag-hunt",
		[][]float64{{4, 0}, {3, 3}},
		[][]float64{{4, 3}, {0, 3}})
}

// BattleOfTheSexes: mixed-motive standardization tussle — both want to
// agree on an interface but each prefers its own.
func BattleOfTheSexes() *Game {
	return New("battle-of-the-sexes",
		[][]float64{{2, 0}, {0, 1}},
		[][]float64{{1, 0}, {0, 2}})
}
