// Package core implements the paper's primary contribution as an
// executable framework: tussle as a first-class design object. It
// provides
//
//   - a model of stakeholders, mechanisms, and tussle spaces;
//   - a run-time tussle engine — rounds of adaptive move/counter-move
//     between stakeholders, the §II observation that "tussle occurs at
//     run time" made operational;
//   - analyzers for the paper's two design principles: design for choice
//     (§IV-B — count and locate the choice points each party holds) and
//     modularize along tussle boundaries (§IV-A — measure how mechanisms
//     couple tussle spaces, and thus where one tussle can distort
//     another);
//   - outcome metrics: control balance between parties, architectural
//     distortion, and visibility of choices (§IV-C).
package core

import (
	"fmt"
	"sort"
)

// Kind classifies stakeholders, mirroring the §I inventory.
type Kind uint8

// Stakeholder kinds.
const (
	User Kind = iota
	ISP
	PrivateNetwork
	Government
	RightsHolder
	ContentProvider
)

func (k Kind) String() string {
	switch k {
	case User:
		return "user"
	case ISP:
		return "isp"
	case PrivateNetwork:
		return "private-network"
	case Government:
		return "government"
	case RightsHolder:
		return "rights-holder"
	default:
		return "content-provider"
	}
}

// Space names a tussle space ("economics", "trust", "openness", or any
// finer-grained arena an experiment defines).
type Space string

// Mechanism is a deployed artifact in the tussle: a protocol feature, a
// middlebox, a pricing rule, a law. Mechanisms are what stakeholders
// "adapt ... to try to achieve their conflicting goals" (§I).
type Mechanism struct {
	Name  string
	Space Space
	Owner string
	// Distortion marks a move that works by violating the design —
	// tunneling to evade classification, overloading a field, kludging
	// a protocol. The paper's principle is that good designs let the
	// tussle happen *within* them, "not by distorting or violating
	// them" (§IV).
	Distortion bool
	// Visible reports whether the mechanism reveals itself and its
	// choices to affected parties (§IV-C: "it matters if choices and
	// the consequence of choices are visible").
	Visible bool
	// Couples lists tussle spaces this mechanism conditions on beyond
	// its own — isolation violations in the §IV-A sense (e.g. a QoS
	// mechanism reading application ports couples "qos" to "apps").
	Couples []Space
}

// State is the engine's public state handed to strategies.
type State struct {
	Round      int
	Mechanisms map[string]*Mechanism
	Utilities  map[string]float64
}

// mechanismNames returns deployed mechanism names in sorted order.
func (s *State) mechanismNames() []string {
	out := make([]string, 0, len(s.Mechanisms))
	for n := range s.Mechanisms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports whether a mechanism is deployed.
func (s *State) Has(name string) bool {
	_, ok := s.Mechanisms[name]
	return ok
}

// Move is one stakeholder action in a round: deploy a mechanism,
// withdraw one, or both nil to pass.
type Move struct {
	Deploy   *Mechanism
	Withdraw string
	// Note annotates the history ("escalate", "comply", ...).
	Note string
}

// Strategy decides a stakeholder's move each round. A nil return passes.
type Strategy func(self *Stakeholder, st *State) *Move

// Stakeholder is one party to the tussle.
type Stakeholder struct {
	Name string
	Kind Kind
	// Utility accumulates across rounds.
	Utility float64
	Strat   Strategy
}

// PayoffFunc scores the current mechanism configuration: it returns each
// stakeholder's per-round utility. This is where a scenario encodes the
// domain (prices, blocked traffic, court rulings...).
type PayoffFunc func(st *State) map[string]float64

// HistoryEntry records one applied move.
type HistoryEntry struct {
	Round int
	Actor string
	Move  Move
}

// Engine runs the tussle.
type Engine struct {
	Stakeholders []*Stakeholder
	Payoff       PayoffFunc

	state   State
	History []HistoryEntry

	// Distortions counts deployed distortion mechanisms over time
	// (each deploy counts once).
	Distortions int
}

// NewEngine assembles an engine with an empty mechanism configuration.
func NewEngine(payoff PayoffFunc, stakeholders ...*Stakeholder) *Engine {
	return &Engine{
		Stakeholders: stakeholders,
		Payoff:       payoff,
		state: State{
			Mechanisms: make(map[string]*Mechanism),
			Utilities:  make(map[string]float64),
		},
	}
}

// State exposes the current state (read-only by convention).
func (e *Engine) State() *State { return &e.state }

// Deploy installs a mechanism directly (scenario setup).
func (e *Engine) Deploy(m *Mechanism) {
	if m == nil {
		return
	}
	e.state.Mechanisms[m.Name] = m
	if m.Distortion {
		e.Distortions++
	}
}

// Withdraw removes a mechanism directly.
func (e *Engine) Withdraw(name string) {
	delete(e.state.Mechanisms, name)
}

// Step runs one tussle round: every stakeholder (in declaration order —
// deterministic) may move; then payoffs are recomputed and accumulated.
func (e *Engine) Step() {
	e.state.Round++
	for _, s := range e.Stakeholders {
		if s.Strat == nil {
			continue
		}
		mv := s.Strat(s, &e.state)
		if mv == nil {
			continue
		}
		if mv.Withdraw != "" {
			e.Withdraw(mv.Withdraw)
		}
		if mv.Deploy != nil {
			if mv.Deploy.Owner == "" {
				mv.Deploy.Owner = s.Name
			}
			e.Deploy(mv.Deploy)
		}
		e.History = append(e.History, HistoryEntry{Round: e.state.Round, Actor: s.Name, Move: *mv})
	}
	if e.Payoff != nil {
		payoffs := e.Payoff(&e.state)
		for _, s := range e.Stakeholders {
			u := payoffs[s.Name]
			s.Utility += u
			e.state.Utilities[s.Name] = u
		}
	}
}

// Run executes n rounds.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// Stakeholder returns the named stakeholder, or nil.
func (e *Engine) Stakeholder(name string) *Stakeholder {
	for _, s := range e.Stakeholders {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ControlBalance compares the accumulated utility of two coalitions
// (e.g. users vs providers): positive means the first coalition is
// winning the tussle. It is the paper's "balance of power" made a
// number.
func (e *Engine) ControlBalance(a, b Kind) float64 {
	var ua, ub float64
	var na, nb int
	for _, s := range e.Stakeholders {
		switch s.Kind {
		case a:
			ua += s.Utility
			na++
		case b:
			ub += s.Utility
			nb++
		}
	}
	if na > 0 {
		ua /= float64(na)
	}
	if nb > 0 {
		ub /= float64(nb)
	}
	return ua - ub
}

// Stable reports whether no stakeholder moved in the last k rounds — the
// (temporary) quiescence of a tussle. The paper holds that there is "no
// final outcome"; experiments use this to detect equilibria of specific
// scenarios.
func (e *Engine) Stable(k int) bool {
	if e.state.Round < k {
		return false
	}
	for _, h := range e.History {
		if h.Round > e.state.Round-k {
			return false
		}
	}
	return true
}

// Summary renders a one-line state description for logs.
func (e *Engine) Summary() string {
	return fmt.Sprintf("round=%d mechanisms=%v distortions=%d",
		e.state.Round, e.state.mechanismNames(), e.Distortions)
}
