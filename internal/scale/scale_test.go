package scale

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestShardCountDeterminism is the core guarantee of the sharded
// simulation core: the same config renders byte-identically at every
// shard count, under both the sequential lockstep driver and the
// parallel epoch driver, with and without chaos faults.
func TestShardCountDeterminism(t *testing.T) {
	for _, seed := range []uint64{42, 7} {
		for _, chaos := range []bool{false, true} {
			base := Config{Nodes: 400, M: 2, Packets: 4000, Seed: seed, Chaos: chaos}
			ref := Run(withShards(base, 1, false)).Render()
			if ref == "" {
				t.Fatal("empty render")
			}
			for _, k := range []int{2, 4, 8} {
				for _, par := range []bool{false, true} {
					got := Run(withShards(base, k, par)).Render()
					if got != ref {
						t.Errorf("seed=%d chaos=%v shards=%d parallel=%v diverged:\n-- shards=1:\n%s-- got:\n%s",
							seed, chaos, k, par, ref, got)
					}
				}
			}
		}
	}
}

func withShards(c Config, k int, par bool) Config {
	c.Shards = k
	c.Parallel = par
	return c
}

// TestDeliversTraffic sanity-checks the workload itself: with no chaos
// and scaled sinks, every packet should be delivered.
func TestDeliversTraffic(t *testing.T) {
	r := Run(Config{Nodes: 500, Packets: 5000, Seed: 3, Shards: 4})
	if r.Delivered != 5000 || r.Dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 5000/0\n%s", r.Delivered, r.Dropped, r.Render())
	}
}

// TestChaosActuallyFaults guards the chaos schedule against silently
// becoming a no-op: at this density some packets must die.
func TestChaosActuallyFaults(t *testing.T) {
	r := Run(Config{Nodes: 500, Packets: 5000, Seed: 3, Shards: 2, Chaos: true})
	if r.Dropped == 0 {
		t.Fatalf("chaos run dropped nothing:\n%s", r.Render())
	}
	if r.Delivered == 0 {
		t.Fatalf("chaos run delivered nothing:\n%s", r.Render())
	}
}

// TestObsMergeShardIndependent verifies the merged metric registry is
// also shard-count-independent (Registry.Merge is commutative and the
// per-event emissions happen exactly once, on the executing shard).
func TestObsMergeShardIndependent(t *testing.T) {
	snap := func(k int, par bool) string {
		r := Run(Config{Nodes: 300, Packets: 3000, Seed: 11, Shards: k, Parallel: par, Obs: true, Chaos: true})
		s := r.Metrics.Snapshot()
		out := ""
		for _, c := range s.Counters {
			out += fmt.Sprintf("%s=%d\n", c.Name, c.Value)
		}
		for _, h := range s.Histograms {
			out += fmt.Sprintf("%s count=%d sum=%g\n", h.Name, h.Count, h.Sum)
		}
		return out
	}
	ref := snap(1, false)
	for _, k := range []int{2, 4} {
		for _, par := range []bool{false, true} {
			if got := snap(k, par); got != ref {
				t.Errorf("metrics diverged at shards=%d parallel=%v:\n-- shards=1:\n%s-- got:\n%s", k, par, ref, got)
			}
		}
	}
}

// TestWindowPositive: generated scale-free topologies always yield a
// usable conservative lookahead for k > 1.
func TestWindowPositive(t *testing.T) {
	r := Run(Config{Nodes: 200, Packets: 200, Seed: 9, Shards: 4})
	if r.CrossLinks == 0 {
		t.Fatal("partition has no cross links at k=4")
	}
	if r.Window <= 0 {
		t.Fatalf("window = %v, want > 0", r.Window)
	}
	if r.Window < 500*sim.Microsecond {
		t.Fatalf("window = %v, implausibly small for 2ms-base latencies", r.Window)
	}
}

// BenchmarkScaleForward is the scale sweep: end-to-end packets through
// the sharded core (topology build + routing tables + full drain) at
// three orders of magnitude of topology size. b.N scales the packet
// count so ns/op approximates steady-state per-packet cost at each
// size; tussle-bench -scale-json snapshots fixed-size runs of the same
// workload into BENCH_scale.json for the -compare regression gate.
func BenchmarkScaleForward(b *testing.B) {
	for _, nodes := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			r := Run(Config{Nodes: nodes, M: 2, Packets: b.N, Seed: 42, Shards: 1})
			if r.Delivered+r.Dropped != b.N {
				b.Fatalf("terminated %d of %d packets", r.Delivered+r.Dropped, b.N)
			}
			b.ReportMetric(float64(r.Processed)/float64(b.N), "events/pkt")
		})
	}
}
