// Command policyc parses, checks, and evaluates TPL policy documents
// (see internal/policy).
//
// Usage:
//
//	policyc check FILE [-vocab port,role,...]
//	policyc eval FILE attr=value ...
//
// check parses the document and, with -vocab, reports attributes outside
// the ontology (tussles the enforcement point cannot capture). eval runs
// the document against an environment built from attr=value arguments:
// values parse as numbers or booleans when possible, else strings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/policy"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, file := os.Args[1], os.Args[2]
	src, err := os.ReadFile(file)
	if err != nil {
		fatal("%v", err)
	}
	doc, err := policy.Parse(string(src))
	if err != nil {
		fatal("%v", err)
	}
	switch cmd {
	case "check":
		fs := flag.NewFlagSet("check", flag.ExitOnError)
		vocab := fs.String("vocab", "", "comma-separated attribute ontology")
		fs.Parse(os.Args[3:])
		fmt.Printf("policy %q: %d rules, default %v\n", doc.Name, len(doc.Rules), defaultOf(doc))
		fmt.Printf("attributes referenced: %s\n", strings.Join(doc.Attributes(), ", "))
		if *vocab != "" {
			out := policy.Analyze(doc, strings.Split(*vocab, ","))
			if len(out) == 0 {
				fmt.Println("ontology: all attributes within vocabulary")
			} else {
				fmt.Printf("ontology: OUTSIDE vocabulary: %s\n", strings.Join(out, ", "))
				os.Exit(2)
			}
		}
	case "eval":
		env := policy.Env{}
		for _, kv := range os.Args[3:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fatal("bad binding %q (want attr=value)", kv)
			}
			env[parts[0]] = parseValue(parts[1])
		}
		d, errs := policy.Evaluate(doc, env)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "warning: %v\n", e)
		}
		where := d.Rule
		if d.Default {
			where = "(default)"
		}
		fmt.Printf("decision: %v", d.Action.Kind)
		switch {
		case d.Action.Reason != "":
			fmt.Printf(" %q", d.Action.Reason)
		case d.Action.What != "":
			fmt.Printf(" %s", d.Action.What)
		case d.Action.Kind == policy.Price:
			fmt.Printf(" %g", d.Action.Amount)
		}
		fmt.Printf("  [rule %s]\n", where)
		if !d.Permitted() {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func defaultOf(doc *policy.Document) string {
	if doc.HasDefault {
		return doc.Default.Kind.String()
	}
	return "deny (implicit)"
}

func parseValue(s string) policy.Value {
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return policy.Num(n)
	}
	if s == "true" || s == "false" {
		return policy.Bool(s == "true")
	}
	return policy.Str(s)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: policyc check FILE [-vocab a,b,...] | policyc eval FILE attr=value ...")
	os.Exit(64)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "policyc: "+format+"\n", args...)
	os.Exit(1)
}
