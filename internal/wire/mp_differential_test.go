package wire

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport/multipath"
)

// The multipath differential harness: one golden segment/ACK byte
// stream driven through the simulator's multipath sender and through
// the wire MultipathSender (on a virtual clock, with its socket layer
// replaced by a capture hook), scenario by scenario. The two decision
// logs must be byte-identical — that is the determinism contract of the
// Clock/Driver seam — and both are pinned against a committed golden
// file (testdata/golden_mp_decisions.txt; regenerate with
// WIRE_GOLDEN_REGEN=1 go test ./internal/wire -run MultipathDifferential)
// so the substrates drifting together still fails loudly.

// mpDiffGraph is the canonical multipath test network from the
// transport package: sender stub 8 and receiver stub 9 homed on three
// peered transits, three link-disjoint 3-node paths.
func mpDiffGraph() *topology.Graph {
	g := topology.NewGraph()
	for i := 1; i <= 3; i++ {
		g.AddNode(topology.NodeID(i), topology.Transit, 1)
	}
	g.AddNode(8, topology.Stub, 2)
	g.AddNode(9, topology.Stub, 2)
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(2, 3, topology.PeerOf, sim.Millisecond, 1)
	for i := 1; i <= 3; i++ {
		g.AddLink(8, topology.NodeID(i), topology.CustomerOf, sim.Millisecond, 1)
		g.AddLink(9, topology.NodeID(i), topology.CustomerOf, sim.Time(i)*sim.Millisecond, 1)
	}
	return g
}

// mpDiffConfig is the harness transport config: a small window and
// fast, tightly bounded timers so every scenario's log terminates
// quickly (MaxRetries 5 turns an under-acked scenario into a prompt
// terminal failure instead of a minute of backoff).
func mpDiffConfig(seed uint64) multipath.Config {
	cfg := multipath.DefaultConfig()
	cfg.Seed = seed
	cfg.Window = 8
	cfg.SegmentSize = 512
	cfg.RTO = 20 * sim.Millisecond
	cfg.MaxRTO = 200 * sim.Millisecond
	cfg.ProbeEvery = 40 * sim.Millisecond
	cfg.MaxProbes = 6
	cfg.MaxRetries = 5
	return cfg
}

func mpDiffPayload() []byte {
	data := make([]byte, 16*512) // 16 segments
	for i := range data {
		data[i] = byte(i*11 + i/257)
	}
	return data
}

// mpAckEv is one scripted ACK: at virtual time at, a cumulative ACK for
// ack with path echo echo arrives at the sender.
type mpAckEv struct {
	at   sim.Time
	ack  uint32
	echo uint16
}

// mpAckBytes serializes the scripted ACK exactly as the receiver would
// build it (modulo the reverse source route, which the sender ignores).
func mpAckBytes(t *testing.T, ev mpAckEv) []byte {
	t.Helper()
	data, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(9, 1), Dst: packet.MakeAddr(8, 1)},
		&packet.TTP{SrcPort: 7000, DstPort: 41000, Ack: ev.ack, Flags: packet.FlagACK, Window: ev.echo, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: nil})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mpDiffScenarios is the golden stream: clean delivery, reordered and
// stale cumulative ACKs, a dup-ACK burst that triggers fast
// retransmission while timers fire, hostile path-index echoes (0, out
// of range) plus a forged cumulative ACK beyond the stream, and a
// silence-then-recovery run that demotes every path, parks the window,
// and promotes paths back through ACK credits.
func mpDiffScenarios() []struct {
	name   string
	script []mpAckEv
} {
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Millisecond }
	return []struct {
		name   string
		script []mpAckEv
	}{
		{"clean", []mpAckEv{
			{ms(5), 4, 1}, {ms(9), 8, 2}, {ms(13), 12, 3}, {ms(17), 16, 1},
		}},
		{"reordered", []mpAckEv{
			{ms(5), 8, 1}, {ms(6), 4, 2}, {ms(11), 12, 3}, {ms(12), 8, 1}, {ms(16), 16, 2},
		}},
		{"dup-probe", []mpAckEv{
			{ms(5), 4, 1}, {ms(6), 4, 2}, {ms(7), 4, 3}, {ms(8), 4, 1}, {ms(33), 16, 1},
		}},
		{"stale-echo", []mpAckEv{
			{ms(5), 4, 0}, {ms(8), 8, 7}, {ms(10), 200, 2}, {ms(12), 12, 9}, {ms(15), 16, 3},
		}},
		{"demotion", []mpAckEv{
			{ms(60), 8, 1}, {ms(100), 16, 2}, {ms(110), 16, 3},
		}},
	}
}

// mpRunSim drives the simulator's sender through the script: segments
// go out over the netsim substrate (nobody answers — the script is the
// only ACK source), scripted ACKs are injected straight into HandleAck
// at their virtual times.
func mpRunSim(t *testing.T, seed uint64, script []mpAckEv) []string {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.New(sched, mpDiffGraph())
	for _, id := range []topology.NodeID{1, 2, 3, 8, 9} {
		net.Node(id).HonorSourceRoutes = true
	}
	snd := multipath.NewSender(net, &multipath.ShortestK{}, 8, 9, 7000, mpDiffPayload(), mpDiffConfig(seed))
	var lines []string
	snd.SetTrace(func(l string) { lines = append(lines, l) })
	for _, ev := range script {
		ack := mpAckBytes(t, ev)
		sched.After(ev.at, func() { snd.HandleAck(ack) })
	}
	snd.Start()
	sched.Run()
	return lines
}

// mpRunWire drives the wire MultipathSender through the same script on
// a virtual clock: the same candidate set (same strategy, same graph),
// the socket layer replaced by a capture hook, ACKs fed through the
// same HandleAck entry point the UDP read loop uses. Everything between
// the two runs — template construction, ring/patch transmit path, RNG
// stream derivation, clock adapter — is what this harness pins.
func mpRunWire(t *testing.T, seed uint64, script []mpAckEv) []string {
	t.Helper()
	cfg := mpDiffConfig(seed)
	strat := &multipath.ShortestK{}
	cands := strat.Discover(mpDiffGraph(), 8, 9, cfg.Paths, cfg.MaxPathLen)
	if len(cands) == 0 {
		t.Fatal("no candidates discovered")
	}
	paths := make([]MPPath, len(cands))
	for i, c := range cands {
		paths[i] = MPPath{Hops: c.Path[1 : len(c.Path)-1], Latency: c.Latency}
	}
	sched := sim.NewScheduler()
	ws, err := newMultipathSender(MultipathSenderConfig{
		Transport: cfg,
		Strategy:  strat,
		Src:       8,
		Dst:       9,
		Port:      7000,
		Paths:     paths,
		Clock:     multipath.SimClock{Sched: sched},
	}, mpDiffPayload(), func(int, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	ws.SetTrace(func(l string) { lines = append(lines, l) })
	for _, ev := range script {
		ack := mpAckBytes(t, ev)
		sched.After(ev.at, func() { ws.HandleAck(ack) })
	}
	ws.Start()
	sched.Run()
	return lines
}

func TestMultipathDifferentialDecisions(t *testing.T) {
	var log strings.Builder
	for _, seed := range []uint64{42, 7} {
		for _, sc := range mpDiffScenarios() {
			simLines := mpRunSim(t, seed, sc.script)
			wireLines := mpRunWire(t, seed, sc.script)
			if len(simLines) == 0 {
				t.Fatalf("seed %d %s: simulator produced no decisions", seed, sc.name)
			}
			simLog := strings.Join(simLines, "\n")
			wireLog := strings.Join(wireLines, "\n")
			if simLog != wireLog {
				t.Errorf("seed %d %s: decision logs diverged\n--- sim ---\n%s\n--- wire ---\n%s",
					seed, sc.name, simLog, wireLog)
				continue
			}
			fmt.Fprintf(&log, "== scenario=%s seed=%d\n%s\n", sc.name, seed, simLog)
		}
	}
	if t.Failed() {
		return
	}

	const goldenPath = "testdata/golden_mp_decisions.txt"
	if os.Getenv("WIRE_GOLDEN_REGEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(log.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden multipath decision log: %v (regenerate with WIRE_GOLDEN_REGEN=1)", err)
	}
	if log.String() != string(want) {
		t.Fatalf("multipath decision log drifted from golden:\n--- got ---\n%s--- want ---\n%s", log.String(), want)
	}
}

// TestMultipathWireTemplateBytes pins the template/patch transmit path
// against the simulator's full Serialize: for every captured wire
// datagram, re-serializing the same segment through packet.Serialize
// (as simXmit does) must yield the identical bytes.
func TestMultipathWireTemplateBytes(t *testing.T) {
	cfg := mpDiffConfig(42)
	strat := &multipath.ShortestK{}
	cands := strat.Discover(mpDiffGraph(), 8, 9, cfg.Paths, cfg.MaxPathLen)
	paths := make([]MPPath, len(cands))
	for i, c := range cands {
		paths[i] = MPPath{Hops: c.Path[1 : len(c.Path)-1], Latency: c.Latency}
	}
	payload := mpDiffPayload()[:5*512+100] // force a short tail segment
	sched := sim.NewScheduler()
	type captured struct {
		path int
		pkt  []byte
	}
	var got []captured
	ws, err := newMultipathSender(MultipathSenderConfig{
		Transport: cfg, Strategy: strat, Src: 8, Dst: 9, Port: 7000,
		Paths: paths, Clock: multipath.SimClock{Sched: sched},
	}, payload, func(path int, pkt []byte) {
		got = append(got, captured{path, append([]byte(nil), pkt...)})
	})
	if err != nil {
		t.Fatal(err)
	}
	ws.Start()
	// Run only the initial burst: no ACKs, stop before the first RTO.
	sched.RunUntil(10 * sim.Millisecond)
	if len(got) == 0 {
		t.Fatal("no datagrams captured")
	}
	for _, c := range got {
		var tip packet.TIP
		if err := tip.DecodeFrom(c.pkt); err != nil {
			t.Fatalf("captured datagram does not decode: %v", err)
		}
		var ttp packet.TTP
		if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
			t.Fatalf("captured TTP does not decode: %v", err)
		}
		want, err := packet.Serialize(
			&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: packet.MakeAddr(8, 1), Dst: packet.MakeAddr(9, 1),
				SourceRoute: cands[c.path].Option()},
			&packet.TTP{SrcPort: 41000, DstPort: 7000, Seq: ttp.Seq, Window: uint16(c.path) + 1, Next: packet.LayerTypeRaw},
			&packet.Raw{Data: ws.core.Segment(ttp.Seq)})
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(c.pkt) {
			t.Fatalf("path %d seq %d: template-built bytes differ from Serialize\n got %x\nwant %x",
				c.path, ttp.Seq, c.pkt, want)
		}
	}
}
