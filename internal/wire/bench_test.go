package wire

import (
	"runtime"
	"testing"
)

// BenchmarkWireProcess measures the per-packet decision kernel: filter,
// decode-in-place, TTL patch, route. This is the per-core ceiling — the
// engine's packet rate is this kernel times cores, minus syscall
// overhead amortized by batching.
func BenchmarkWireProcess(b *testing.B) {
	pb, err := NewProcessBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := pb.Run(b.N); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// BenchmarkWireLoopback measures the full engine over real UDP on
// loopback: blast client → recvmmsg batch → filter → decode → deliver →
// sendmmsg echo batch → client. One op is a complete round trip, so the
// reported pps is the two-way rate sustained without loss write-offs on
// the ISSUE's ≥1M pps target (multi-core; single-core machines record
// their fallback in BENCH_wire.json).
func BenchmarkWireLoopback(b *testing.B) {
	lb, err := NewLoopbackBench(runtime.GOMAXPROCS(0))
	if err != nil {
		b.Fatal(err)
	}
	defer lb.Close()
	// Warm both sides: socket buffers, netpoller registration, decode
	// scratch.
	if _, err := lb.Run(min(2000, b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := lb.Run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if res.Received == 0 {
		b.Fatalf("no echoes: %+v", res)
	}
	b.ReportMetric(res.PPS(), "pps")
	b.ReportMetric(float64(res.Lost)/float64(b.N), "lost/op")
}
