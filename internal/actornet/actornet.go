// Package actornet implements the actor-network model the paper draws
// from Latour and Callon (§II-A, §II-C): a network of human and nonhuman
// actors whose mutual alignment makes the whole socio-technical system
// durable. Two claims from the paper are made operational:
//
//   - "the network gets harder to change as it grows up": the probability
//     that an architectural change succeeds falls as alignment rises;
//   - "the entrance of new actors ... creates continuous churn in the
//     actor network, which keeps the actor network from becoming frozen":
//     each entrant perturbs the alignments around its attachment points,
//     and when entry stops the network freezes.
package actornet

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Kind distinguishes human from nonhuman actors — the model gives them
// "equal attention as shapers" (§II-A).
type Kind uint8

// Actor kinds.
const (
	Human Kind = iota
	Technology
	Institution
)

func (k Kind) String() string {
	switch k {
	case Human:
		return "human"
	case Technology:
		return "technology"
	default:
		return "institution"
	}
}

// Actor is one participant in the socio-technical network.
type Actor struct {
	Name   string
	Kind   Kind
	Joined int // round of entry
}

// Network is the actor network.
type Network struct {
	rng    *sim.RNG
	actors map[string]*Actor
	// align[a][b] in [0,1] measures the commitment between two actors.
	align map[string]map[string]float64
	// actorList mirrors the keys of actors in ascending order, and nbr
	// mirrors each actor's alignment partners in ascending order. Both
	// are maintained incrementally on insert, so the per-round dynamics
	// (Step, Durability) iterate in the same deterministic order as a
	// fresh sort without sorting — or allocating — on every call.
	actorList []string
	nbr       map[string][]string
	Round     int

	// HarmonizationRate is how fast aligned pairs converge per round.
	HarmonizationRate float64
	// Perturbation is how much a new entrant disturbs the alignments
	// around its attachment points.
	Perturbation float64

	// Entries counts actors that joined after construction;
	// ChangesTried/ChangesWon track architectural change attempts.
	Entries, ChangesTried, ChangesWon int

	entrySeq int
}

// New creates an empty network with the default dynamics.
func New(rng *sim.RNG) *Network {
	return &Network{
		rng:               rng,
		actors:            make(map[string]*Actor),
		align:             make(map[string]map[string]float64),
		nbr:               make(map[string][]string),
		HarmonizationRate: 0.05,
		Perturbation:      0.35,
	}
}

// AddActor inserts an actor; duplicate names panic (a wiring bug).
func (n *Network) AddActor(name string, kind Kind) *Actor {
	if _, dup := n.actors[name]; dup {
		panic(fmt.Sprintf("actornet: duplicate actor %q", name))
	}
	a := &Actor{Name: name, Kind: kind, Joined: n.Round}
	n.actors[name] = a
	n.align[name] = make(map[string]float64)
	n.actorList = insertSorted(n.actorList, name)
	return a
}

// insertSorted inserts s into the ascending slice xs.
func insertSorted(xs []string, s string) []string {
	i := sort.SearchStrings(xs, s)
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = s
	return xs
}

// Align sets the mutual alignment between two actors.
func (n *Network) Align(a, b string, v float64) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if _, known := n.align[a][b]; !known {
		n.nbr[a] = insertSorted(n.nbr[a], b)
		n.nbr[b] = insertSorted(n.nbr[b], a)
	}
	n.align[a][b] = v
	n.align[b][a] = v
}

// Alignment returns the current alignment between two actors.
func (n *Network) Alignment(a, b string) float64 { return n.align[a][b] }

// Actors returns the actor names in deterministic (ascending) order. The
// returned slice is a copy; internal code iterates the cache directly.
func (n *Network) Actors() []string {
	out := make([]string, len(n.actorList))
	copy(out, n.actorList)
	return out
}

// neighbors returns a's alignment partners in deterministic (ascending)
// order. The returned slice is the live cache: callers must not mutate it.
func (n *Network) neighbors(a string) []string {
	return n.nbr[a]
}

// Durability is the mean alignment across all edges — the Latour
// "society made durable" metric. An edgeless network has durability 0.
func (n *Network) Durability() float64 {
	total, count := 0.0, 0
	for _, name := range n.actorList {
		for _, other := range n.neighbors(name) {
			if other > name { // count each edge once
				total += n.align[name][other]
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Step advances one round: aligned pairs harmonize toward full
// commitment, and with probability entryRate a new actor enters,
// attaching to a few existing actors and perturbing the alignments
// around them.
func (n *Network) Step(entryRate float64) {
	n.Round++
	// Harmonization: all existing edges drift toward 1.
	for _, name := range n.actorList {
		for _, other := range n.neighbors(name) {
			if other > name {
				nv := n.align[name][other] + n.HarmonizationRate*(1-n.align[name][other])
				n.align[name][other] = nv
				n.align[other][name] = nv
			}
		}
	}
	if n.rng.Bool(entryRate) && len(n.actors) > 0 {
		n.enter()
	}
}

// enter admits a new actor, attaching it to up to three existing actors
// and perturbing their other relationships — fresh perspectives
// destabilize settled arrangements.
func (n *Network) enter() {
	n.entrySeq++
	n.Entries++
	name := fmt.Sprintf("entrant-%d", n.entrySeq)
	kinds := []Kind{Human, Technology, Institution}
	a := n.AddActor(name, kinds[n.rng.Intn(len(kinds))])
	existing := n.actorList
	attach := 3
	if attach > len(existing)-1 {
		attach = len(existing) - 1
	}
	perm := n.rng.Perm(len(existing))
	attached := 0
	for _, idx := range perm {
		target := existing[idx]
		if target == name {
			continue
		}
		n.Align(name, target, n.rng.Range(0.05, 0.3))
		// The attachment point's other relationships loosen.
		for _, other := range n.neighbors(target) {
			if other == name {
				continue
			}
			nv := n.align[target][other] * (1 - n.Perturbation)
			n.align[target][other] = nv
			n.align[other][target] = nv
		}
		attached++
		if attached >= attach {
			break
		}
	}
	_ = a
}

// AttemptChange models trying to change the architecture: success
// probability is 1 - Durability. The paper's paradox in one line —
// stability is valuable to society and frustrating to technologists.
func (n *Network) AttemptChange() bool {
	n.ChangesTried++
	if n.rng.Float64() < 1-n.Durability() {
		n.ChangesWon++
		return true
	}
	return false
}

// ChangeSuccessRate reports the empirical fraction of successful change
// attempts.
func (n *Network) ChangeSuccessRate() float64 {
	if n.ChangesTried == 0 {
		return 0
	}
	return float64(n.ChangesWon) / float64(n.ChangesTried)
}

// Frozen reports whether the network's durability exceeds the threshold
// — "a freezing of the actor network, and a freezing of the Internet"
// (§II-C).
func (n *Network) Frozen(threshold float64) bool {
	return n.Durability() >= threshold
}

// SeedInternet builds the canonical starting network the experiments
// use: protocols, ISPs, users, applications, and lawmakers, moderately
// aligned.
func SeedInternet(rng *sim.RNG) *Network {
	n := New(rng)
	n.AddActor("protocols", Technology)
	n.AddActor("isps", Institution)
	n.AddActor("users", Human)
	n.AddActor("applications", Technology)
	n.AddActor("lawmakers", Institution)
	names := n.Actors()
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			n.Align(names[i], names[j], rng.Range(0.2, 0.5))
		}
	}
	return n
}
