package wire

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The differential harness: identical TIP bytes fed to the live
// engine's decision kernel and to the simulator (via InjectArrival at
// the same node) must produce byte-identical decision logs — deliver,
// forward to the same next hop, or drop with the same reason string,
// including packets the wire sanity filter rejects. The log is also
// pinned against a committed golden file (testdata/golden_decisions.txt;
// regenerate with WIRE_GOLDEN_REGEN=1 go test ./internal/wire -run
// Differential) so either engine drifting from the recorded decisions
// fails loudly even if they drift together.

// garbler is a deterministic, stateless middlebox that rewrites
// matching traffic into undecodable bytes — the malformed-after drop
// path, which no real middlebox in the repo produces.
type garbler struct{}

func (garbler) Name() string { return "garbler" }
func (garbler) Silent() bool { return false }
func (garbler) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		return nil, netsim.Accept
	}
	if tip.TOS != 0x77 {
		return nil, netsim.Accept
	}
	return []byte{0xDE, 0xAD}, netsim.Accept
}

// diffChain builds the middlebox chain under test. Each engine gets its
// own instances (stateful devices are not shareable); both are built
// from this one spec.
func diffChain() []netsim.Middlebox {
	return []netsim.Middlebox{
		&middlebox.PortFirewall{Label: "fw", BlockedPorts: map[uint16]bool{25: true}},
		&middlebox.PortFirewall{Label: "ghost", BlockedPorts: map[uint16]bool{6667: true}, Quiet: true},
		&middlebox.Redirector{Label: "redir", MatchPort: 8080, To: packet.MakeAddr(2, 99)},
		&middlebox.Wiretap{Label: "tap", MatchSrc: 1},
		garbler{},
	}
}

// diffSim builds the simulator twin: a 1-2-3-4 chain with node 2
// carrying the chain under test and the same routing pathologies as
// testNodeConfig.
func diffSim(t *testing.T) (*netsim.Network, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	g := topology.Linear(4, sim.Millisecond)
	n := netsim.New(sched, g)
	for id := topology.NodeID(1); id <= 4; id++ {
		n.Node(id).Route = chainRoute(id)
	}
	nd := n.Node(2)
	nd.HonorSourceRoutes = true
	nd.RequirePaymentForSourceRoute = true
	for _, m := range diffChain() {
		nd.AddMiddlebox(m)
	}
	return n, sched
}

// simDecision extracts node 2's decision from an InjectArrival trace,
// in the shared vocabulary.
func simDecision(t *testing.T, tr *netsim.Trace, node topology.NodeID) string {
	t.Helper()
	if len(tr.Events) == 0 {
		t.Fatalf("trace recorded no events: %+v", tr)
	}
	ev := tr.Events[0]
	if ev.Node != node {
		t.Fatalf("first decision at node %d, want %d: %+v", ev.Node, node, tr)
	}
	switch ev.Action {
	case "deliver":
		return "deliver"
	case "drop":
		return "drop " + ev.Detail
	case "forward":
		if len(tr.Events) < 2 {
			t.Fatalf("forward with no subsequent hop: %+v", tr)
		}
		// The simulator records the forward event before the next-hop
		// lookup; a routing failure is a drop at the same node right
		// after it.
		if nxt := tr.Events[1]; nxt.Action == "drop" && nxt.Node == node {
			return "drop " + nxt.Detail
		}
		return fmt.Sprintf("forward %d", tr.Events[1].Node)
	default:
		t.Fatalf("unexpected first action %q", ev.Action)
		return ""
	}
}

// goldenStream is the byte-stream corpus: clean traffic, malformed
// datagrams, middlebox-rewritten cases, and policy edges — every
// decision path the two engines share.
func goldenStream(t *testing.T) []struct {
	name string
	data []byte
} {
	t.Helper()
	src := packet.MakeAddr(1, 1)
	srcRouted := func(pay bool, host uint16) []byte {
		tip := &packet.TIP{
			TTL: 16, Proto: packet.LayerTypeRaw,
			Src: packet.MakeAddr(4, 1), Dst: packet.MakeAddr(1, host),
			SourceRoute: &packet.SourceRouteOption{Hops: []packet.Addr{packet.MakeAddr(3, 1)}},
		}
		if pay {
			tip.Payment = &packet.PaymentOption{Payer: tip.Src, Payee: packet.MakeAddr(2, 0), AmountMilli: 5, Nonce: 1, MAC: 9}
		}
		data, err := packet.Serialize(tip, &packet.Raw{Data: []byte("sr")})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	badck := rawPkt(t, src, packet.MakeAddr(4, 1), 16, "ck")
	badck[6] ^= 0xff
	badver := rawPkt(t, src, packet.MakeAddr(4, 1), 16, "vv")
	badver[0] = 0x28 // version nibble 2: sanity-filter reject
	garbled := func() []byte {
		data, err := packet.Serialize(
			&packet.TIP{TTL: 16, TOS: 0x77, Proto: packet.LayerTypeRaw, Src: src, Dst: packet.MakeAddr(4, 1)},
			&packet.Raw{Data: []byte("gg")})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}()
	return []struct {
		name string
		data []byte
	}{
		{"clean-transit", rawPkt(t, src, packet.MakeAddr(4, 1), 16, "hello")},
		{"clean-deliver", rawPkt(t, src, packet.MakeAddr(2, 5), 16, "local")},
		{"clean-downstream", rawPkt(t, packet.MakeAddr(4, 2), packet.MakeAddr(1, 7), 16, "back")},
		{"blocked-smtp", ttpPkt(t, packet.TIP{TTL: 16, Src: src, Dst: packet.MakeAddr(4, 1)}, 25, "MAIL")},
		{"silent-irc", ttpPkt(t, packet.TIP{TTL: 16, Src: src, Dst: packet.MakeAddr(4, 1)}, 6667, "irc")},
		{"redirected-web", ttpPkt(t, packet.TIP{TTL: 16, Src: src, Dst: packet.MakeAddr(4, 1)}, 8080, "GET")},
		{"tapped-https", ttpPkt(t, packet.TIP{TTL: 16, Src: src, Dst: packet.MakeAddr(4, 1)}, 443, "tls")},
		{"garbled-rewrite", garbled},
		{"ttl-expired", rawPkt(t, src, packet.MakeAddr(4, 1), 1, "old")},
		{"no-route", rawPkt(t, src, packet.MakeAddr(7, 1), 16, "lost")},
		{"bad-next-hop", rawPkt(t, src, packet.MakeAddr(8, 1), 16, "off")},
		{"srcroute-paid", srcRouted(true, 9)},
		{"srcroute-unpaid", srcRouted(false, 9)},
		{"truncated", []byte{0x18, 0x00, 0x00}},
		{"empty", nil},
		{"bad-version", badver},
		{"bad-checksum", badck},
		{"oversized-total", func() []byte {
			d := rawPkt(t, src, packet.MakeAddr(4, 1), 16, "sz")
			d[2], d[3] = 0xFF, 0xFF // total length past the datagram
			return d
		}()},
	}
}

func TestDifferentialDecisions(t *testing.T) {
	n, sched := diffSim(t)
	dp := NewDataplane(testNodeConfig(diffChain()))

	var log strings.Builder
	for _, pkt := range goldenStream(t) {
		// The wire engine patches bytes in place; both engines get a
		// private copy, as they would from their own receive paths.
		wireGot := dp.Process(append([]byte(nil), pkt.data...)).String()
		tr := n.InjectArrival(2, pkt.data)
		sched.Run()
		simGot := simDecision(t, tr, 2)
		if wireGot != simGot {
			t.Errorf("%s: live engine decided %q, simulator decided %q", pkt.name, wireGot, simGot)
		}
		fmt.Fprintf(&log, "%s %s\n", pkt.name, wireGot)
	}

	const goldenPath = "testdata/golden_decisions.txt"
	if os.Getenv("WIRE_GOLDEN_REGEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(log.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden decision log: %v (regenerate with WIRE_GOLDEN_REGEN=1)", err)
	}
	if log.String() != string(want) {
		t.Fatalf("decision log drifted from golden:\n--- got ---\n%s--- want ---\n%s", log.String(), want)
	}
}

// TestDifferentialStateful pins the agreement for a stateful rewrite
// sequence: a NAT translating an outbound flow, then un-translating the
// reply — both engines must evolve the NAT state identically because
// they see the identical packet order.
func TestDifferentialStateful(t *testing.T) {
	public := packet.MakeAddr(2, 1)
	mkChain := func() []netsim.Middlebox {
		return []netsim.Middlebox{middlebox.NewNAT("nat", public)}
	}
	sched := sim.NewScheduler()
	g := topology.Linear(4, sim.Millisecond)
	n := netsim.New(sched, g)
	for id := topology.NodeID(1); id <= 4; id++ {
		n.Node(id).Route = chainRoute(id)
	}
	for _, m := range mkChain() {
		n.Node(2).AddMiddlebox(m)
	}
	cfg := testNodeConfig(mkChain())
	cfg.HonorSourceRoutes = false
	cfg.RequirePaymentForSourceRoute = false
	dp := NewDataplane(cfg)

	// The NAT rewrites only Sending/Delivering traffic; a transit
	// arrival, then a delivery addressed to the public address, must
	// take the same decisions in both engines (the delivery's port is
	// unmapped, so it passes through untranslated — state agreement is
	// what's pinned, not a translation).
	stream := [][]byte{
		ttpPkt(t, packet.TIP{TTL: 16, Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(4, 1)}, 80, "out"),
		ttpPkt(t, packet.TIP{TTL: 16, Src: packet.MakeAddr(4, 1), Dst: public}, 40000, "in"),
	}
	for i, data := range stream {
		wireGot := dp.Process(append([]byte(nil), data...)).String()
		tr := n.InjectArrival(2, data)
		sched.Run()
		if simGot := simDecision(t, tr, 2); wireGot != simGot {
			t.Errorf("packet %d: live %q vs sim %q", i, wireGot, simGot)
		}
	}
}
