package pathvector

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// smallNet: two tier-1 peers (1,2), two customers (3 of 1, 4 of 2), and a
// stub 5 multihomed to 3 and 4.
func smallNet() *topology.Graph {
	g := topology.NewGraph()
	g.AddNode(1, topology.Transit, 1)
	g.AddNode(2, topology.Transit, 1)
	g.AddNode(3, topology.Transit, 2)
	g.AddNode(4, topology.Transit, 2)
	g.AddNode(5, topology.Stub, 3)
	g.AddLink(1, 2, topology.PeerOf, sim.Millisecond, 1)
	g.AddLink(3, 1, topology.CustomerOf, sim.Millisecond, 1)
	g.AddLink(4, 2, topology.CustomerOf, sim.Millisecond, 1)
	g.AddLink(5, 3, topology.CustomerOf, sim.Millisecond, 1)
	g.AddLink(5, 4, topology.CustomerOf, sim.Millisecond, 1)
	return g
}

func TestConvergeReachability(t *testing.T) {
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	ids := p.G.NodeIDs()
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			if path := p.Path(a, b); path == nil {
				t.Fatalf("no route %d->%d", a, b)
			}
		}
	}
}

func TestValleyFreePaths(t *testing.T) {
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	if v := p.CheckGaoRexford(); v != 0 {
		t.Fatalf("%d valley violations", v)
	}
}

func TestPreferCustomerRoute(t *testing.T) {
	// Node 1 can reach 5 via its customer 3 (1-3-5) or via peer 2
	// (1-2-4-5). Customer route must win even if same length mattered.
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	path := p.Path(1, 5)
	if len(path) != 3 || path[1] != 3 {
		t.Fatalf("path 1->5 = %v, want via customer 3", path)
	}
}

func TestNoFreeTransitBetweenPeers(t *testing.T) {
	// 1 must not export its peer-learned routes to peer 2. Route from
	// 2 to 3 must go via 1 only because 3 is 1's customer (exportable);
	// but 2's route to 4's customers must not transit 1's peer links.
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	// 4 is 2's customer; 1 reaches 4 via peer 2 — fine (2 exports
	// customer routes to peers). But verify 3 never routes to 4 through
	// a path that uses 1→2 peer edge then 2→4: that is legal
	// (customer 3 may use provider 1's peer route). The forbidden
	// pattern is a peer→peer→peer path. Construct one and check it is
	// absent everywhere.
	for _, rib := range p.RIBs {
		for _, r := range rib.Best {
			full := append([]topology.NodeID{rib.Node}, r.Path...)
			peers := 0
			for i := 0; i+1 < len(full); i++ {
				if c, _ := p.G.RelFrom(full[i], full[i+1]); c == topology.Peer {
					peers++
				}
			}
			if peers > 1 {
				t.Fatalf("path %v crosses %d peer edges", full, peers)
			}
		}
	}
}

func TestMultihomedStubChoosesOneUpstream(t *testing.T) {
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	path := p.Path(5, 1)
	if path == nil || (path[1] != 3 && path[1] != 4) {
		t.Fatalf("path 5->1 = %v", path)
	}
}

func TestLocalPrefOverride(t *testing.T) {
	g := smallNet()
	p := New(g)
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	defaultUp := p.Path(5, 1)[1]
	other := topology.NodeID(3)
	if defaultUp == 3 {
		other = 4
	}
	// The stub prefers the other upstream for destination 1 — the
	// consumer's choice mechanism.
	p2 := New(g)
	p2.Prefer[[2]topology.NodeID{5, 1}] = other
	if err := p2.Converge(); err != nil {
		t.Fatal(err)
	}
	if got := p2.Path(5, 1)[1]; got != other {
		t.Fatalf("LocalPref ignored: via %d, want %d", got, other)
	}
}

func TestNoExportDePeering(t *testing.T) {
	g := smallNet()
	p := New(g)
	// 2 stops exporting to 1 entirely (de-peering move). 1 must lose
	// its route to 4 (which was only reachable via the peer edge).
	p.NoExportTo[[2]topology.NodeID{2, 1}] = true
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	if path := p.Path(1, 4); path != nil {
		t.Fatalf("1 still reaches 4 via %v after de-peering", path)
	}
	// But 3 (1's customer) also loses 4 — collateral damage of the
	// provider tussle, visible in the experiment suite.
	if path := p.Path(3, 4); path != nil {
		t.Fatalf("3 still reaches 4 via %v", path)
	}
}

func TestConvergenceOnGeneratedTopologies(t *testing.T) {
	f := func(seed uint64) bool {
		g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(seed))
		p := New(g)
		if err := p.Converge(); err != nil {
			return false
		}
		return p.CheckGaoRexford() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedReachabilityFullMesh(t *testing.T) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(11))
	p := New(g)
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	ids := g.NodeIDs()
	missing := 0
	for _, a := range ids {
		for _, b := range ids {
			if a != b && p.Path(a, b) == nil {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Fatalf("%d unreachable pairs under Gao-Rexford", missing)
	}
}

func TestRouteFuncAdapters(t *testing.T) {
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	rf := p.RouteFunc(5)
	nh, ok := rf(packet.MakeAddr(1, 9), nil)
	if !ok || (nh != 3 && nh != 4) {
		t.Fatalf("RouteFunc(5->1) = %d,%v", nh, ok)
	}
	if _, ok := rf(packet.MakeAddr(77, 0), nil); ok {
		t.Fatal("unknown destination should have no route")
	}
}

func TestVisibilityLowerThanLinkState(t *testing.T) {
	// The path-vector protocol exposes chosen paths only; per §IV-C it
	// must reveal strictly less than the link-state database's full
	// cost map on the same topology. We compare "choices revealed with
	// reasons" — link-state reveals every directed edge cost (with the
	// cost), path-vector reveals one chosen path per pair with no
	// alternatives. The experiment suite quantifies this; here we just
	// pin the structural fact that alternatives/costs are absent.
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, rib := range p.RIBs {
		for dst, r := range rib.Best {
			if dst == rib.Node {
				continue
			}
			// A RIB entry records exactly one path and no cost metric.
			if len(r.Path) == 0 {
				t.Fatalf("empty path to %d", dst)
			}
		}
	}
}

func TestPathsAreSimple(t *testing.T) {
	g := topology.GenerateHierarchy(topology.DefaultHierarchy(), sim.NewRNG(13))
	p := New(g)
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, rib := range p.RIBs {
		for _, r := range rib.Best {
			seen := map[topology.NodeID]bool{rib.Node: true}
			for _, n := range r.Path {
				if seen[n] {
					t.Fatalf("loop in path %v from %d", r.Path, rib.Node)
				}
				seen[n] = true
			}
		}
	}
}

func TestVisibleChoicesCountsBestPaths(t *testing.T) {
	p := New(smallNet())
	if err := p.Converge(); err != nil {
		t.Fatal(err)
	}
	// Full reachability on 5 nodes: each RIB holds 4 foreign routes.
	if v := p.VisibleChoices(); v != 5*4 {
		t.Fatalf("VisibleChoices = %d, want 20", v)
	}
}
