package gametheory

import (
	"math"
	"sort"
)

// This file implements the mechanism-design strand of §II-B: Vickrey's
// second-price auction and the VCG generalization, whose point is that
// they make truth-telling a dominant strategy — removing the
// information sub-game from the tussle ("with tussle reduced or
// eliminated in the information subgame, it becomes simpler to reduce or
// guide tussle in the larger overall game").

// Bid is one bidder's declared value.
type Bid struct {
	Bidder string
	Amount float64
}

// AuctionResult is the outcome of a single-item auction.
type AuctionResult struct {
	Winner string
	// Price is what the winner pays.
	Price float64
}

// Vickrey runs a sealed-bid second-price auction. Ties go to the
// earliest bidder (deterministic).
func Vickrey(bids []Bid) (AuctionResult, bool) {
	if len(bids) == 0 {
		return AuctionResult{}, false
	}
	winIdx := 0
	for i, b := range bids {
		if b.Amount > bids[winIdx].Amount {
			winIdx = i
		}
	}
	second := math.Inf(-1)
	for i, b := range bids {
		if i != winIdx && b.Amount > second {
			second = b.Amount
		}
	}
	if math.IsInf(second, -1) {
		second = 0
	}
	return AuctionResult{Winner: bids[winIdx].Bidder, Price: second}, true
}

// FirstPrice runs a sealed-bid first-price auction, the non-truthful
// comparator.
func FirstPrice(bids []Bid) (AuctionResult, bool) {
	if len(bids) == 0 {
		return AuctionResult{}, false
	}
	winIdx := 0
	for i, b := range bids {
		if b.Amount > bids[winIdx].Amount {
			winIdx = i
		}
	}
	return AuctionResult{Winner: bids[winIdx].Bidder, Price: bids[winIdx].Amount}, true
}

// Utility computes a bidder's utility from an auction outcome given
// their true value.
func Utility(res AuctionResult, bidder string, trueValue float64) float64 {
	if res.Winner != bidder {
		return 0
	}
	return trueValue - res.Price
}

// TruthfulnessViolation searches for a profitable misreport for one
// bidder against fixed competitor bids, over a grid of deviations. It
// returns the maximum gain from lying (0 for a truthful mechanism).
func TruthfulnessViolation(mechanism func([]Bid) (AuctionResult, bool), bidder string, trueValue float64, others []Bid, grid []float64) float64 {
	truthful := append([]Bid{{bidder, trueValue}}, others...)
	res, ok := mechanism(truthful)
	if !ok {
		return 0
	}
	base := Utility(res, bidder, trueValue)
	maxGain := 0.0
	for _, dev := range grid {
		lied := append([]Bid{{bidder, dev}}, others...)
		r, ok := mechanism(lied)
		if !ok {
			continue
		}
		if gain := Utility(r, bidder, trueValue) - base; gain > maxGain {
			maxGain = gain
		}
	}
	return maxGain
}

// VCGItem allocates k identical items to the k highest of n single-unit
// bidders, charging each winner the externality they impose: the
// (k+1)-th highest bid. This is the uniform-price special case of VCG
// and is truthful.
type VCGItem struct {
	Winners []string
	// Price is the per-item VCG payment.
	Price float64
}

// VCGAllocate runs the k-item VCG auction.
func VCGAllocate(bids []Bid, k int) VCGItem {
	if k <= 0 || len(bids) == 0 {
		return VCGItem{}
	}
	sorted := make([]Bid, len(bids))
	copy(sorted, bids)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Amount > sorted[j].Amount })
	if k > len(sorted) {
		k = len(sorted)
	}
	out := VCGItem{}
	for i := 0; i < k; i++ {
		out.Winners = append(out.Winners, sorted[i].Bidder)
	}
	if k < len(sorted) {
		out.Price = sorted[k].Amount
	}
	return out
}
