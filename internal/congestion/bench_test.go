package congestion

import "testing"

func benchBottleneck(b *testing.B, disc Discipline) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var flows []*Flow
		for j := 0; j < 10; j++ {
			flows = append(flows, NewFlow("f", j < 3))
		}
		bn := NewBottleneck(100, disc, flows...)
		bn.Run(500)
	}
}

func BenchmarkBottleneckFIFO(b *testing.B)      { benchBottleneck(b, SharedFIFO) }
func BenchmarkBottleneckFairQueue(b *testing.B) { benchBottleneck(b, FairQueue) }
