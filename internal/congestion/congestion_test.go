package congestion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func compliantFlows(n int) []*Flow {
	out := make([]*Flow, n)
	for i := range out {
		out[i] = NewFlow("flow", false)
	}
	return out
}

func TestCompliantFlowsShareFairly(t *testing.T) {
	flows := compliantFlows(4)
	b := NewBottleneck(40, SharedFIFO, flows...)
	b.Run(500)
	if j := b.JainIndex(); j < 0.95 {
		t.Fatalf("Jain index among identical AIMD flows = %v", j)
	}
	// Link should be well utilized.
	if g := b.Goodput(); g < 30 {
		t.Fatalf("goodput = %v of capacity 40", g)
	}
}

func TestCheaterDominatesSharedFIFO(t *testing.T) {
	flows := compliantFlows(4)
	cheat := NewFlow("cheater", true)
	flows = append(flows, cheat)
	b := NewBottleneck(40, SharedFIFO, flows...)
	b.Run(500)
	cheaterShare := b.ShareOf(func(f *Flow) bool { return f.Aggressive })
	if cheaterShare < 0.5 {
		t.Fatalf("cheater share on FIFO = %v, should dominate 1/5 fair share", cheaterShare)
	}
}

func TestFairQueueBoundsCheater(t *testing.T) {
	run := func(disc Discipline) *Bottleneck {
		flows := compliantFlows(4)
		flows = append(flows, NewFlow("cheater", true))
		b := NewBottleneck(40, disc, flows...)
		b.Run(500)
		return b
	}
	fifo := run(SharedFIFO)
	fq := run(FairQueue)
	cheaterFIFO := fifo.ShareOf(func(f *Flow) bool { return f.Aggressive })
	cheaterFQ := fq.ShareOf(func(f *Flow) bool { return f.Aggressive })
	// FQ bounds the cheater's advantage: well below its FIFO haul and
	// below half the link (it still absorbs slack that sawtoothing
	// AIMD flows leave on the table — that is max-min, not a bug).
	if cheaterFQ >= cheaterFIFO/2 {
		t.Fatalf("cheater share: FQ %v vs FIFO %v — FQ should bound it", cheaterFQ, cheaterFIFO)
	}
	if cheaterFQ > 0.45 {
		t.Fatalf("cheater share under FQ = %v", cheaterFQ)
	}
	// And each compliant flow is strictly better off under FQ.
	compliantFQ := fq.ShareOf(func(f *Flow) bool { return !f.Aggressive }) * fq.TotalDelivered
	compliantFIFO := fifo.ShareOf(func(f *Flow) bool { return !f.Aggressive }) * fifo.TotalDelivered
	if compliantFQ <= compliantFIFO {
		t.Fatalf("compliant delivered: FQ %v vs FIFO %v", compliantFQ, compliantFIFO)
	}
}

func TestCheatersCollapseGoodputOnFIFO(t *testing.T) {
	// With many cheaters on FIFO, loss explodes.
	var flows []*Flow
	for i := 0; i < 5; i++ {
		flows = append(flows, NewFlow("cheater", true))
	}
	b := NewBottleneck(40, SharedFIFO, flows...)
	b.Run(500)
	if b.LossRate() < 0.5 {
		t.Fatalf("all-cheater loss rate = %v, want congestion collapse", b.LossRate())
	}
}

func TestAIMDReactions(t *testing.T) {
	f := NewFlow("f", false)
	f.Cwnd = 10
	f.react(false)
	if f.Cwnd != 11 {
		t.Fatalf("additive increase: %v", f.Cwnd)
	}
	f.react(true)
	if f.Cwnd != 5.5 {
		t.Fatalf("multiplicative decrease: %v", f.Cwnd)
	}
	// Floor at 1.
	f.Cwnd = 1
	f.react(true)
	if f.Cwnd != 1 {
		t.Fatalf("floor: %v", f.Cwnd)
	}
	// Cheater ignores loss.
	c := NewFlow("c", true)
	c.Cwnd = 10
	c.react(true)
	if c.Cwnd != 11 {
		t.Fatalf("cheater reaction: %v", c.Cwnd)
	}
}

func TestMaxMinProperties(t *testing.T) {
	flows := []*Flow{
		{Cwnd: 2},  // small demand: fully satisfied
		{Cwnd: 50}, // elephant
		{Cwnd: 50}, // elephant
	}
	alloc := maxMin(30, flows)
	if alloc[0] != 2 {
		t.Fatalf("small demand alloc = %v", alloc[0])
	}
	if math.Abs(alloc[1]-14) > 1e-9 || math.Abs(alloc[2]-14) > 1e-9 {
		t.Fatalf("elephant allocs = %v, %v; want 14 each", alloc[1], alloc[2])
	}
}

func TestMaxMinConservation(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(seed uint32) bool {
		n := int(seed%5) + 1
		flows := make([]*Flow, n)
		demand := 0.0
		for i := range flows {
			flows[i] = &Flow{Cwnd: rng.Range(0.1, 20)}
			demand += flows[i].Cwnd
		}
		cap := rng.Range(1, 40)
		alloc := maxMin(cap, flows)
		total := 0.0
		for i, a := range alloc {
			if a < -1e-9 || a > flows[i].Cwnd+1e-9 {
				return false // never exceed demand
			}
			total += a
		}
		want := math.Min(cap, demand)
		return math.Abs(total-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSocialPressureRestoresOrder(t *testing.T) {
	rng := sim.NewRNG(2)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, NewFlow("ok", false))
	}
	for i := 0; i < 3; i++ {
		flows = append(flows, NewFlow("cheater", true))
	}
	b := NewBottleneck(40, SharedFIFO, flows...)
	converted := SocialPressure(b, rng, 0.05, 600)
	if converted != 3 {
		t.Fatalf("converted %d cheaters, want all 3", converted)
	}
	// After conversion, measure fairness over a fresh window.
	for _, f := range b.Flows {
		f.Delivered, f.Lost = 0, 0
	}
	b.TotalDelivered, b.TotalLost = 0, 0
	b.Run(300)
	if j := b.JainIndex(); j < 0.9 {
		t.Fatalf("post-enforcement Jain index = %v", j)
	}
}

func TestGoodputNeverExceedsCapacity(t *testing.T) {
	f := func(seed uint64, disc bool) bool {
		rng := sim.NewRNG(seed)
		var flows []*Flow
		n := rng.Intn(6) + 1
		for i := 0; i < n; i++ {
			flows = append(flows, NewFlow("f", rng.Bool(0.3)))
		}
		d := SharedFIFO
		if disc {
			d = FairQueue
		}
		b := NewBottleneck(rng.Range(5, 50), d, flows...)
		b.Run(200)
		return b.Goodput() <= b.Capacity+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDisciplineString(t *testing.T) {
	if SharedFIFO.String() != "shared-fifo" || FairQueue.String() != "fair-queue" {
		t.Fatal("discipline names wrong")
	}
}
