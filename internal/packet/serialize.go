package packet

// SerializeBuffer builds packet bytes from the innermost layer outward:
// each layer prepends its header in front of everything serialized so far,
// mirroring gopacket's SerializeBuffer. The zero value is ready to use.
type SerializeBuffer struct {
	buf   []byte // backing storage
	start int    // index of first used byte
}

// NewSerializeBuffer returns a buffer with headroom for typical header
// stacks, avoiding reallocation in hot paths.
func NewSerializeBuffer() *SerializeBuffer {
	b := make([]byte, 256)
	return &SerializeBuffer{buf: b, start: len(b)}
}

// Bytes returns the serialized packet so far. The slice aliases the
// buffer; it is invalidated by further Prepend/Append calls.
func (s *SerializeBuffer) Bytes() []byte { return s.buf[s.start:] }

// Len returns the current serialized length.
func (s *SerializeBuffer) Len() int { return len(s.buf) - s.start }

// Clear resets the buffer for reuse, retaining storage.
func (s *SerializeBuffer) Clear() {
	if s.buf == nil {
		s.buf = make([]byte, 256)
	}
	s.start = len(s.buf)
}

// Prepend returns a writable slice of n bytes placed before the current
// contents.
func (s *SerializeBuffer) Prepend(n int) []byte {
	if s.buf == nil {
		s.Clear()
	}
	if n > s.start {
		used := len(s.buf) - s.start
		grown := make([]byte, n+used+256)
		newStart := len(grown) - used
		copy(grown[newStart:], s.buf[s.start:])
		s.buf = grown
		s.start = newStart
	}
	s.start -= n
	zone := s.buf[s.start : s.start+n]
	for i := range zone {
		zone[i] = 0
	}
	return zone
}

// Append returns a writable slice of n bytes placed after the current
// contents. Rarely needed; trailers only.
func (s *SerializeBuffer) Append(n int) []byte {
	if s.buf == nil {
		s.Clear()
	}
	used := len(s.buf) - s.start
	grown := make([]byte, len(s.buf)+n)
	copy(grown[s.start:], s.buf[s.start:])
	s.buf = grown[:len(s.buf)+n]
	zone := s.buf[s.start+used : s.start+used+n]
	for i := range zone {
		zone[i] = 0
	}
	return zone
}

// SerializeLayers clears b and writes the given layers innermost-last
// (the natural reading order: outermost first), returning the packet
// bytes. Layers that need back-references (lengths, checksums, next-layer
// types) compute them during their own SerializeTo because inner layers
// are already in the buffer.
func SerializeLayers(b *SerializeBuffer, layers ...SerializableLayer) ([]byte, error) {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

// Serialize is a convenience wrapper allocating a fresh buffer.
func Serialize(layers ...SerializableLayer) ([]byte, error) {
	out, err := SerializeLayers(NewSerializeBuffer(), layers...)
	if err != nil {
		return nil, err
	}
	cp := make([]byte, len(out))
	copy(cp, out)
	return cp, nil
}
