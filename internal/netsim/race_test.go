//go:build race

package netsim

// raceEnabled reports that this test binary runs under the race
// detector, which makes sync.Pool drop 25% of Puts on purpose — pooled
// paths then allocate nondeterministically, so strict alloc bounds over
// many pool round-trips per run are meaningless under -race.
const raceEnabled = true
