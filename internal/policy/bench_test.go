package policy

import "testing"

func BenchmarkParseDocument(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(aup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	doc, err := Parse(aup)
	if err != nil {
		b.Fatal(err)
	}
	env := Env{
		"port": Num(8080), "direction": Str("inbound"),
		"role": Str("consumer"), "tos": Num(2),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d, _ := Evaluate(doc, env); d.Rule == "" && !d.Default {
			b.Fatal("no decision")
		}
	}
}

func BenchmarkParseExpr(b *testing.B) {
	const src = `port in [80, 443] && role != "guest" || tos >= 4`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseExpr(src); err != nil {
			b.Fatal(err)
		}
	}
}
