// Package fiber implements the research project §V-A3 of the paper
// explicitly calls for: "design and demonstrate a fiber-based
// residential access facility that supports competition in higher-level
// services. Technical questions include whether sharing should be in
// the time domain (packets) or color domain, how the fairness of
// sharing can be enforced and verified, an approach to fault isolation
// and other operational issues, and how incremental upgrades can be
// done."
//
// The facility multiplexes several retail ISPs over one municipal
// fiber. Two sharing designs are modeled:
//
//   - TDM: packets from all ISPs share the fiber under weighted fair
//     queueing; fairness is enforced by the scheduler and verified by
//     per-ISP accounting; capacity upgrades are fractional; a scheduler
//     fault affects everyone.
//   - WDM: each ISP gets its own wavelength; fairness is physical (no
//     enforcement needed); upgrades come in whole-lambda quanta; a
//     lambda fault affects exactly one ISP.
package fiber

import (
	"fmt"
	"sort"

	"repro/internal/qos"
	"repro/internal/sim"
)

// Domain selects the sharing design.
type Domain uint8

// Sharing domains.
const (
	// TDM shares in the time domain: packet scheduling.
	TDM Domain = iota
	// WDM shares in the color domain: one wavelength per ISP.
	WDM
)

func (d Domain) String() string {
	if d == TDM {
		return "tdm"
	}
	return "wdm"
}

// Tenant is one retail ISP on the facility.
type Tenant struct {
	Name string
	// Entitlement is the contracted share of facility capacity
	// (fractions summing to <= 1 across tenants).
	Entitlement float64
	// Demand is offered load in bytes/second.
	Demand float64
	// Cheats marks a tenant that offers far beyond its entitlement,
	// hoping to grab unenforced capacity.
	Cheats bool

	// Delivered is measured throughput (bytes/second), set by Measure.
	Delivered float64
	// Failed marks a tenant knocked out by a fault.
	Failed bool
}

// Facility is the shared access plant.
type Facility struct {
	// Capacity is total fiber capacity in bytes/second (per lambda
	// times lambda count for WDM).
	Capacity float64
	Domain   Domain
	Tenants  []*Tenant

	// LambdaCapacity is the per-wavelength capacity for WDM; the
	// number of lambdas is Capacity/LambdaCapacity.
	LambdaCapacity float64

	// SchedulerFailed models a fault in the shared TDM scheduler.
	SchedulerFailed bool
	// failedLambda records a WDM wavelength fault (tenant index, -1
	// none).
	failedLambda int
}

// New builds a facility.
func New(capacity float64, domain Domain, lambdaCapacity float64, tenants ...*Tenant) *Facility {
	return &Facility{
		Capacity: capacity, Domain: domain,
		LambdaCapacity: lambdaCapacity,
		Tenants:        tenants,
		failedLambda:   -1,
	}
}

// FailLambda knocks out tenant i's wavelength (WDM) — a fault with a
// one-tenant blast radius.
func (f *Facility) FailLambda(i int) { f.failedLambda = i }

// FailScheduler knocks out the shared TDM scheduler — a fault with a
// facility-wide blast radius.
func (f *Facility) FailScheduler() { f.SchedulerFailed = true }

// Measure computes each tenant's delivered throughput under the current
// design, demands, and faults. It returns the total delivered.
func (f *Facility) Measure() float64 {
	switch f.Domain {
	case WDM:
		return f.measureWDM()
	default:
		return f.measureTDM()
	}
}

func (f *Facility) measureWDM() float64 {
	total := 0.0
	for i, t := range f.Tenants {
		t.Failed = i == f.failedLambda
		if t.Failed {
			t.Delivered = 0
			continue
		}
		// Physical isolation: a tenant gets min(demand, its lambda).
		// Entitlement maps to whole lambdas.
		lambdas := t.Entitlement * f.Capacity / f.LambdaCapacity
		capacity := float64(int(lambdas+0.5)) * f.LambdaCapacity
		got := t.Demand
		if got > capacity {
			got = capacity
		}
		t.Delivered = got
		total += got
	}
	return total
}

func (f *Facility) measureTDM() float64 {
	if f.SchedulerFailed {
		for _, t := range f.Tenants {
			t.Failed = true
			t.Delivered = 0
		}
		return 0
	}
	// Weighted max-min fair allocation by entitlement.
	type ent struct {
		t *Tenant
		w float64
	}
	var ents []ent
	for _, t := range f.Tenants {
		t.Failed = false
		ents = append(ents, ent{t, t.Entitlement})
	}
	remaining := f.Capacity
	demands := make([]float64, len(ents))
	for i, e := range ents {
		demands[i] = e.t.Demand
	}
	alloc := make([]float64, len(ents))
	active := make([]bool, len(ents))
	liveWeight := 0.0
	for i := range ents {
		active[i] = true
		liveWeight += ents[i].w
	}
	for remaining > 1e-9 && liveWeight > 0 {
		progress := false
		for i, e := range ents {
			if !active[i] {
				continue
			}
			share := remaining * e.w / liveWeight
			if demands[i]-alloc[i] <= share {
				remaining -= demands[i] - alloc[i]
				alloc[i] = demands[i]
				active[i] = false
				liveWeight -= e.w
				progress = true
			}
		}
		if !progress {
			for i, e := range ents {
				if active[i] {
					alloc[i] += remaining * e.w / liveWeight
				}
			}
			remaining = 0
		}
	}
	total := 0.0
	for i, e := range ents {
		e.t.Delivered = alloc[i]
		total += alloc[i]
	}
	return total
}

// FairnessReport verifies sharing: each tenant's achieved share vs its
// entitlement — the "how can fairness be verified" question. Overage is
// capacity a tenant took beyond entitlement while another tenant was
// demand-limited below its own entitlement (true unfairness, not
// backfilling of idle capacity).
type FairnessReport struct {
	// Shares maps tenant name to delivered/capacity.
	Shares map[string]float64
	// MaxOverage is the largest unfair overage found.
	MaxOverage float64
}

// Verify audits the last Measure run.
func (f *Facility) Verify() FairnessReport {
	r := FairnessReport{Shares: map[string]float64{}}
	// A tenant is "starved" if it wanted its entitlement but got less.
	starved := false
	for _, t := range f.Tenants {
		share := t.Delivered / f.Capacity
		r.Shares[t.Name] = share
		entitledDemand := t.Entitlement * f.Capacity
		if t.Demand >= entitledDemand && t.Delivered < entitledDemand-1e-9 && !t.Failed {
			starved = true
		}
	}
	if starved {
		for _, t := range f.Tenants {
			over := r.Shares[t.Name] - t.Entitlement
			if over > r.MaxOverage {
				r.MaxOverage = over
			}
		}
	}
	return r
}

// UpgradeGranularity reports the smallest capacity increment the design
// can sell a tenant — fractional for TDM (any scheduler weight change),
// a whole lambda for WDM.
func (f *Facility) UpgradeGranularity() float64 {
	if f.Domain == WDM {
		return f.LambdaCapacity
	}
	return 0 // arbitrarily fine-grained
}

// BlastRadius reports how many tenants a single fault takes out under
// the design's characteristic failure.
func (f *Facility) BlastRadius() int {
	if f.Domain == WDM {
		return 1 // one lambda, one tenant
	}
	return len(f.Tenants) // the shared scheduler
}

// DelaySim runs a packet-level check of TDM fairness using the WFQ
// scheduler from internal/qos: each tenant maps to a class with weight
// proportional to entitlement (supports up to qos.NumClasses tenants).
// It returns mean delay per tenant, demonstrating that enforcement
// holds at packet granularity, not just in fluid-flow accounting.
func (f *Facility) DelaySim(rng *sim.RNG, packets int) (map[string]sim.Time, error) {
	if len(f.Tenants) > qos.NumClasses {
		return nil, fmt.Errorf("fiber: DelaySim supports at most %d tenants", qos.NumClasses)
	}
	link := qos.NewLinkSim(f.Capacity, qos.WFQ)
	for i, t := range f.Tenants {
		link.Weights[i] = t.Entitlement
	}
	// Offer load proportional to demand.
	totalDemand := 0.0
	for _, t := range f.Tenants {
		totalDemand += t.Demand
	}
	for p := 0; p < packets; p++ {
		x := rng.Float64() * totalDemand
		idx := 0
		for i, t := range f.Tenants {
			x -= t.Demand
			if x < 0 {
				idx = i
				break
			}
		}
		link.Add(qos.Class(idx), 1000, sim.Time(rng.Intn(1000))*sim.Microsecond)
	}
	link.Run()
	delays := link.MeanDelayByClass()
	out := map[string]sim.Time{}
	for i, t := range f.Tenants {
		out[t.Name] = delays[i]
	}
	return out, nil
}

// TenantNames lists tenants in declaration order (stable reporting).
func (f *Facility) TenantNames() []string {
	out := make([]string, len(f.Tenants))
	for i, t := range f.Tenants {
		out[i] = t.Name
	}
	sort.Strings(out)
	return out
}
