package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func triangle() *Graph {
	g := NewGraph()
	g.AddNode(1, Transit, 1)
	g.AddNode(2, Transit, 1)
	g.AddNode(3, Stub, 2)
	g.AddLink(1, 2, PeerOf, sim.Millisecond, 1)
	g.AddLink(3, 1, CustomerOf, sim.Millisecond, 1)
	return g
}

func TestRelationships(t *testing.T) {
	g := triangle()
	if c, ok := g.RelFrom(3, 1); !ok || c != Provider {
		t.Fatalf("RelFrom(3,1) = %v,%v; want provider", c, ok)
	}
	if c, ok := g.RelFrom(1, 3); !ok || c != Customer {
		t.Fatalf("RelFrom(1,3) = %v,%v; want customer", c, ok)
	}
	if c, ok := g.RelFrom(1, 2); !ok || c != Peer {
		t.Fatalf("RelFrom(1,2) = %v,%v; want peer", c, ok)
	}
	if _, ok := g.RelFrom(2, 3); ok {
		t.Fatal("RelFrom on non-adjacent nodes should be false")
	}
}

func TestProvidersCustomersPeers(t *testing.T) {
	g := triangle()
	if p := g.Providers(3); len(p) != 1 || p[0] != 1 {
		t.Fatalf("Providers(3) = %v", p)
	}
	if c := g.Customers(1); len(c) != 1 || c[0] != 3 {
		t.Fatalf("Customers(1) = %v", c)
	}
	if p := g.Peers(1); len(p) != 1 || p[0] != 2 {
		t.Fatalf("Peers(1) = %v", p)
	}
}

func TestNeighborsDeterministic(t *testing.T) {
	g := triangle()
	n1 := g.Neighbors(1)
	n2 := g.Neighbors(1)
	if len(n1) != 2 || n1[0] != n2[0] || n1[1] != n2[1] {
		t.Fatalf("Neighbors unstable: %v vs %v", n1, n2)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewGraph()
	g.AddNode(1, Transit, 1)
	g.AddNode(1, Transit, 1)
}

func TestSelfLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewGraph()
	g.AddNode(1, Transit, 1)
	g.AddLink(1, 1, PeerOf, 0, 1)
}

func TestLinkToUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewGraph()
	g.AddNode(1, Transit, 1)
	g.AddLink(1, 2, PeerOf, 0, 1)
}

func TestConnected(t *testing.T) {
	g := triangle()
	if !g.Connected() {
		t.Fatal("triangle should be connected")
	}
	g.AddNode(9, Stub, 3)
	if g.Connected() {
		t.Fatal("isolated node should disconnect graph")
	}
}

func TestGenerateHierarchyConnected(t *testing.T) {
	f := func(seed uint64) bool {
		g := GenerateHierarchy(DefaultHierarchy(), sim.NewRNG(seed))
		return g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateHierarchyShape(t *testing.T) {
	cfg := DefaultHierarchy()
	g := GenerateHierarchy(cfg, sim.NewRNG(1))
	if len(g.Nodes) != cfg.Tier1+cfg.Tier2+cfg.Stubs {
		t.Fatalf("node count = %d", len(g.Nodes))
	}
	if len(g.Stubs()) != cfg.Stubs {
		t.Fatalf("stub count = %d", len(g.Stubs()))
	}
	// Every non-tier-1 node must have at least one provider
	// (Gao–Rexford reachability precondition).
	for _, id := range g.NodeIDs() {
		n := g.Nodes[id]
		if n.Tier > 1 && len(g.Providers(id)) == 0 {
			t.Fatalf("node %d (tier %d) has no provider", id, n.Tier)
		}
	}
	// Tier-1s form a peer clique.
	var t1 []NodeID
	for _, id := range g.NodeIDs() {
		if g.Nodes[id].Tier == 1 {
			t1 = append(t1, id)
		}
	}
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			if c, ok := g.RelFrom(t1[i], t1[j]); !ok || c != Peer {
				t.Fatalf("tier-1 %d and %d not peers", t1[i], t1[j])
			}
		}
	}
}

func TestGenerateHierarchyDeterministic(t *testing.T) {
	a := GenerateHierarchy(DefaultHierarchy(), sim.NewRNG(7))
	b := GenerateHierarchy(DefaultHierarchy(), sim.NewRNG(7))
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if a.Links[i].A != b.Links[i].A || a.Links[i].B != b.Links[i].B || a.Links[i].Rel != b.Links[i].Rel {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestLinear(t *testing.T) {
	g := Linear(4, sim.Millisecond)
	if !g.Connected() || len(g.Links) != 3 {
		t.Fatalf("linear graph malformed: %d links", len(g.Links))
	}
	if c, _ := g.RelFrom(1, 2); c != Provider {
		t.Fatal("linear chain should point providers rightward")
	}
}

func TestLinkBetween(t *testing.T) {
	g := triangle()
	if _, ok := g.LinkBetween(1, 2); !ok {
		t.Fatal("missing link 1-2")
	}
	if _, ok := g.LinkBetween(2, 3); ok {
		t.Fatal("phantom link 2-3")
	}
	l, _ := g.LinkBetween(2, 1)
	if l.Other(2) != 1 || l.Other(1) != 2 {
		t.Fatal("Other endpoints wrong")
	}
}
