package trust

import "sort"

// Reputation is a third-party reputation service: "web sites assess and
// report the reputation of other sites" (§V-B). It scores subjects from
// reported interaction outcomes using a Beta(1,1)-prior estimator, so
// unknown subjects score 0.5.
type Reputation struct {
	// Name identifies the service; parties choose which one to consult.
	Name string
	// Accuracy is the probability a report is recorded truthfully;
	// mediators themselves vary in quality, which is why choice among
	// them matters.
	Accuracy float64

	good, bad map[string]int
}

// NewReputation creates a service with the given report accuracy
// (1.0 = perfect bookkeeping).
func NewReputation(name string, accuracy float64) *Reputation {
	return &Reputation{
		Name: name, Accuracy: accuracy,
		good: make(map[string]int), bad: make(map[string]int),
	}
}

// Report records an interaction outcome for subject. flip provides the
// randomness for inaccurate mediators; pass nil-safe rand via a closure
// returning false for deterministic perfect mediators.
func (r *Reputation) Report(subject string, wasGood bool, flip func() bool) {
	if r.Accuracy < 1 && flip != nil && flip() {
		wasGood = !wasGood
	}
	if wasGood {
		r.good[subject]++
	} else {
		r.bad[subject]++
	}
}

// Score returns the posterior mean reputation in [0,1]; 0.5 for unknown
// subjects.
func (r *Reputation) Score(subject string) float64 {
	g, b := r.good[subject], r.bad[subject]
	return float64(g+1) / float64(g+b+2)
}

// Known reports whether the service has any history for subject.
func (r *Reputation) Known(subject string) bool {
	return r.good[subject]+r.bad[subject] > 0
}

// Subjects lists every scored subject, sorted.
func (r *Reputation) Subjects() []string {
	set := map[string]bool{}
	for s := range r.good {
		set[s] = true
	}
	for s := range r.bad {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Guarantor is a liability-limiting intermediary — the credit-card role
// in §V-B: "credit card companies limit our liability to $50". It holds
// transactions in escrow-like records and makes the customer whole (up
// to the cap) when a dispute is upheld.
type Guarantor struct {
	Name string
	// LiabilityCap is the maximum loss a customer bears per dispute.
	LiabilityCap float64
	// FeeRate is the guarantor's cut of each transaction.
	FeeRate float64

	// Revenue accumulates fees; Payouts accumulates dispute refunds.
	Revenue, Payouts float64

	txSeq int
	txs   map[int]*Transaction
}

// Transaction is one guaranteed purchase.
type Transaction struct {
	ID       int
	Buyer    string
	Seller   string
	Amount   float64
	Disputed bool
	Refunded float64
}

// NewGuarantor creates a guarantor with the classic $50-style cap.
func NewGuarantor(name string, cap float64, feeRate float64) *Guarantor {
	return &Guarantor{Name: name, LiabilityCap: cap, FeeRate: feeRate, txs: make(map[int]*Transaction)}
}

// Charge records a guaranteed transaction and returns its ID.
func (g *Guarantor) Charge(buyer, seller string, amount float64) int {
	g.txSeq++
	g.Revenue += amount * g.FeeRate
	g.txs[g.txSeq] = &Transaction{ID: g.txSeq, Buyer: buyer, Seller: seller, Amount: amount}
	return g.txSeq
}

// Dispute resolves a transaction in the buyer's favor: the buyer's loss
// is capped at LiabilityCap, the guarantor refunds the rest. It returns
// the refund (0 for unknown or already-disputed transactions).
func (g *Guarantor) Dispute(txID int) float64 {
	tx, ok := g.txs[txID]
	if !ok || tx.Disputed {
		return 0
	}
	tx.Disputed = true
	refund := tx.Amount - g.LiabilityCap
	if refund < 0 {
		refund = 0
	}
	tx.Refunded = refund
	g.Payouts += refund
	return refund
}

// BuyerLoss returns what the buyer ultimately lost on a transaction that
// went bad: the full amount if not disputed, else the cap.
func (g *Guarantor) BuyerLoss(txID int) float64 {
	tx, ok := g.txs[txID]
	if !ok {
		return 0
	}
	if !tx.Disputed {
		return tx.Amount
	}
	return tx.Amount - tx.Refunded
}
