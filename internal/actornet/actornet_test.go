package actornet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDurabilityRisesWithoutEntry(t *testing.T) {
	n := SeedInternet(sim.NewRNG(1))
	d0 := n.Durability()
	for i := 0; i < 100; i++ {
		n.Step(0) // no new entrants
	}
	d1 := n.Durability()
	if d1 <= d0 {
		t.Fatalf("durability %v -> %v should rise with no entry", d0, d1)
	}
	if d1 < 0.95 {
		t.Fatalf("after 100 quiet rounds durability = %v, want near 1", d1)
	}
}

func TestEntryKeepsNetworkChangeable(t *testing.T) {
	quiet := SeedInternet(sim.NewRNG(2))
	churning := SeedInternet(sim.NewRNG(2))
	for i := 0; i < 150; i++ {
		quiet.Step(0)
		churning.Step(0.5)
	}
	if churning.Durability() >= quiet.Durability() {
		t.Fatalf("churn durability %v should be below quiet %v",
			churning.Durability(), quiet.Durability())
	}
	if churning.Entries == 0 {
		t.Fatal("no entrants arrived at 50% entry rate")
	}
}

func TestFrozenDetection(t *testing.T) {
	n := SeedInternet(sim.NewRNG(3))
	if n.Frozen(0.9) {
		t.Fatal("fresh network should not be frozen")
	}
	for i := 0; i < 200; i++ {
		n.Step(0)
	}
	if !n.Frozen(0.9) {
		t.Fatalf("quiet network should freeze; durability = %v", n.Durability())
	}
}

func TestChangeSuccessDeclinesWithAge(t *testing.T) {
	n := SeedInternet(sim.NewRNG(4))
	young := 0
	for i := 0; i < 200; i++ {
		if n.AttemptChange() {
			young++
		}
	}
	for i := 0; i < 200; i++ {
		n.Step(0)
	}
	old := 0
	for i := 0; i < 200; i++ {
		if n.AttemptChange() {
			old++
		}
	}
	if old >= young {
		t.Fatalf("old network accepted %d changes vs young %d — should be harder to change as it grows up", old, young)
	}
	if n.ChangeSuccessRate() <= 0 || n.ChangeSuccessRate() >= 1 {
		t.Fatalf("success rate = %v", n.ChangeSuccessRate())
	}
}

func TestAlignmentBounds(t *testing.T) {
	f := func(seed uint64, rate float64) bool {
		r := rate - float64(int(rate)) // fractional part in [0,1)
		if r < 0 {
			r = -r
		}
		n := SeedInternet(sim.NewRNG(seed))
		for i := 0; i < 50; i++ {
			n.Step(r)
		}
		for _, a := range n.Actors() {
			for _, b := range n.Actors() {
				v := n.Alignment(a, b)
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		d := n.Durability()
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignClamps(t *testing.T) {
	n := New(sim.NewRNG(5))
	n.AddActor("a", Human)
	n.AddActor("b", Technology)
	n.Align("a", "b", 5)
	if n.Alignment("a", "b") != 1 {
		t.Fatal("alignment not clamped to 1")
	}
	n.Align("a", "b", -3)
	if n.Alignment("a", "b") != 0 {
		t.Fatal("alignment not clamped to 0")
	}
}

func TestAlignSymmetric(t *testing.T) {
	n := New(sim.NewRNG(6))
	n.AddActor("a", Human)
	n.AddActor("b", Technology)
	n.Align("a", "b", 0.4)
	if n.Alignment("a", "b") != n.Alignment("b", "a") {
		t.Fatal("alignment asymmetric")
	}
}

func TestDuplicateActorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New(sim.NewRNG(7))
	n.AddActor("x", Human)
	n.AddActor("x", Human)
}

func TestEmptyNetworkDurability(t *testing.T) {
	n := New(sim.NewRNG(8))
	if n.Durability() != 0 {
		t.Fatal("empty network durability should be 0")
	}
	n.Step(1) // must not panic with no actors
}

func TestEntrantsGetDistinctNames(t *testing.T) {
	n := SeedInternet(sim.NewRNG(9))
	for i := 0; i < 50; i++ {
		n.Step(1) // entry every round
	}
	if n.Entries != 50 {
		t.Fatalf("entries = %d", n.Entries)
	}
	if len(n.Actors()) != 55 {
		t.Fatalf("actors = %d", len(n.Actors()))
	}
}

func TestKindString(t *testing.T) {
	if Human.String() != "human" || Technology.String() != "technology" || Institution.String() != "institution" {
		t.Fatal("kind names wrong")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		n := SeedInternet(sim.NewRNG(42))
		for i := 0; i < 80; i++ {
			n.Step(0.3)
		}
		return n.Durability()
	}
	if run() != run() {
		t.Fatal("same seed produced different trajectories")
	}
}
