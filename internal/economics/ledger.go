package economics

import (
	"errors"
	"fmt"
)

// Ledger is the settlement substrate for value flow: "Whatever the
// compensation, recognize that it must flow, just as much as data must
// flow" (§IV-C). It tracks balances and enforces conservation — value is
// transferred, never created.
type Ledger struct {
	balances map[string]float64
	// Entries is the audit trail.
	Entries []LedgerEntry
	// initial is the sum of all opening balances, for the conservation
	// invariant.
	initial float64
}

// LedgerEntry is one transfer.
type LedgerEntry struct {
	From, To string
	Amount   float64
	Memo     string
}

// ErrInsufficient is returned on overdraft attempts.
var ErrInsufficient = errors.New("economics: insufficient balance")

// NewLedger opens accounts with the given balances.
func NewLedger(opening map[string]float64) *Ledger {
	l := &Ledger{balances: make(map[string]float64, len(opening))}
	for k, v := range opening {
		l.balances[k] = v
		l.initial += v
	}
	return l
}

// Balance returns an account balance (0 for unknown accounts).
func (l *Ledger) Balance(acct string) float64 { return l.balances[acct] }

// Transfer moves amount from one account to another. Negative amounts
// are rejected; overdrafts are rejected.
func (l *Ledger) Transfer(from, to string, amount float64, memo string) error {
	if amount < 0 {
		return fmt.Errorf("economics: negative transfer %v", amount)
	}
	if l.balances[from] < amount {
		return fmt.Errorf("%w: %s has %v, needs %v", ErrInsufficient, from, l.balances[from], amount)
	}
	l.balances[from] -= amount
	l.balances[to] += amount
	l.Entries = append(l.Entries, LedgerEntry{From: from, To: to, Amount: amount, Memo: memo})
	return nil
}

// Conserved verifies the conservation invariant: total value equals the
// opening total.
func (l *Ledger) Conserved() bool {
	total := 0.0
	for _, v := range l.balances {
		total += v
	}
	return abs(total-l.initial) < 1e-6
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FeeSchedule models a payment intermediary's pricing: a fixed fee plus
// a proportional rate per transaction.
type FeeSchedule struct {
	Name  string
	Fixed float64
	Rate  float64
}

// Fee returns the cost of one transaction of the given size.
func (f FeeSchedule) Fee(amount float64) float64 {
	return f.Fixed + f.Rate*amount
}

// NetDelivered returns what the payee receives from n payments of the
// given size, after fees.
func (f FeeSchedule) NetDelivered(n int, amount float64) float64 {
	gross := float64(n) * amount
	fees := float64(n) * f.Fee(amount)
	net := gross - fees
	if net < 0 {
		return 0
	}
	return net
}

// MicropaymentViability reproduces the §IV-C aside on "the rise and fall
// of micro-payments": under a fixed-fee schedule, payments below the
// breakeven size deliver nothing. It returns the smallest payment size
// with positive net delivery.
func (f FeeSchedule) MicropaymentViability() float64 {
	if f.Rate >= 1 {
		return inf()
	}
	return f.Fixed / (1 - f.Rate)
}

func inf() float64 { return 1e308 }
