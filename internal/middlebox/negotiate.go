package middlebox

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/trust"
)

// ControlPort is the well-known port for firewall pinhole requests — the
// MIDCOM-style control channel §V-B footnote 12 refers to ("protocols
// and interfaces to allow the end node and the control point to
// communicate about the desired controls").
const ControlPort uint16 = 3288

// NegotiableFirewall blocks by default but accepts in-band pinhole
// requests: a control packet carrying the desired port (2-byte payload)
// and the requester's identity option. The admission decision is a TPL
// policy evaluation — who may open what is expressed in the policy
// language, not hard-coded.
type NegotiableFirewall struct {
	Label string
	// Doc governs pinhole admission. The evaluation environment gets
	// "requested-port", "identity-scheme", "identity", and
	// "reputation" (when Rep is set).
	Doc *policy.Document
	// Rep optionally supplies reputation scores for requesters.
	Rep *trust.Reputation
	// AlwaysOpen ports need no negotiation.
	AlwaysOpen map[uint16]bool
	Quiet      bool

	pinholes map[uint16]bool
	// Requests/Granted/Denied count control-channel activity; Hits
	// counts data packets dropped.
	Requests, Granted, Denied, Hits int
}

// Name implements netsim.Middlebox.
func (f *NegotiableFirewall) Name() string { return f.Label }

// Silent implements netsim.Middlebox.
func (f *NegotiableFirewall) Silent() bool { return f.Quiet }

// Pinholes returns the currently open negotiated ports (sorted order is
// the caller's concern; the map is a copy).
func (f *NegotiableFirewall) Pinholes() map[uint16]bool {
	out := make(map[uint16]bool, len(f.pinholes))
	for p := range f.pinholes {
		out[p] = true
	}
	return out
}

// Close revokes a pinhole.
func (f *NegotiableFirewall) Close(port uint16) { delete(f.pinholes, port) }

// Process implements netsim.Middlebox.
func (f *NegotiableFirewall) Process(node topology.NodeID, dir netsim.Direction, data []byte) ([]byte, netsim.Verdict) {
	if dir != netsim.Delivering {
		return nil, netsim.Accept
	}
	tip, ttp := decode(data)
	if tip == nil || ttp == nil {
		return nil, netsim.Accept
	}
	if ttp.DstPort == ControlPort {
		f.handleRequest(tip, ttp)
		// The control packet is consumed either way: the firewall is
		// the endpoint of the control conversation.
		return nil, netsim.Drop
	}
	if f.AlwaysOpen[ttp.DstPort] || f.pinholes[ttp.DstPort] {
		return nil, netsim.Accept
	}
	f.Hits++
	return nil, netsim.Drop
}

func (f *NegotiableFirewall) handleRequest(tip *packet.TIP, ttp *packet.TTP) {
	f.Requests++
	payload := ttp.LayerPayload()
	if len(payload) < 2 {
		f.Denied++
		return
	}
	port := uint16(payload[0])<<8 | uint16(payload[1])
	env := policy.Env{
		"requested-port": policy.Num(float64(port)),
	}
	scheme := "none"
	identity := ""
	if tip.Identity != nil {
		scheme = trust.Scheme(tip.Identity.Scheme).String()
		identity = string(tip.Identity.ID)
	}
	env["identity-scheme"] = policy.Str(scheme)
	env["identity"] = policy.Str(identity)
	if f.Rep != nil {
		env["reputation"] = policy.Num(f.Rep.Score(identity))
	}
	if f.Doc == nil {
		f.Denied++
		return
	}
	d, _ := policy.Evaluate(f.Doc, env)
	if d.Permitted() {
		if f.pinholes == nil {
			f.pinholes = make(map[uint16]bool)
		}
		f.pinholes[port] = true
		f.Granted++
		return
	}
	f.Denied++
}

// PinholeRequest builds the control packet an endpoint sends to open a
// port through the firewall at fwAddr.
func PinholeRequest(src, fwAddr packet.Addr, identity *packet.IdentityOption, port uint16) ([]byte, error) {
	return packet.Serialize(
		&packet.TIP{TTL: 16, Proto: packet.LayerTypeTTP, Src: src, Dst: fwAddr, Identity: identity},
		&packet.TTP{SrcPort: 50000, DstPort: ControlPort, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: []byte{byte(port >> 8), byte(port)}})
}
