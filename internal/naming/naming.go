// Package naming implements the name system of the simulated
// internetwork and the §IV-A case study around it. The paper's diagnosis:
// DNS is "entangled in debate because DNS names are used both to name
// machines and to express trademark", and the fix is tussle isolation —
// "separate strategies to deal with the issues of trademark, naming
// mailbox services, and providing names for machines."
//
// The package therefore supports two registry designs over the same
// record machinery:
//
//   - Entangled: one namespace; a trademark dispute that suspends a name
//     also breaks the machine and mailbox bindings under it.
//   - Isolated: three namespaces (machine, mailbox, brand); disputes are
//     confined to the brand space, and machine names are meaningless
//     tokens with no trademark value.
//
// A hierarchical resolver with TTL caching sits on top, so experiments
// can also measure resolution load and the effect of kludges.
package naming

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/packet"
)

// Space is a namespace within the isolated design.
type Space string

// Namespaces of the isolated design. The entangled design collapses all
// three into SpaceAll.
const (
	SpaceMachine Space = "machine"
	SpaceMailbox Space = "mailbox"
	SpaceBrand   Space = "brand"
	SpaceAll     Space = "all"
)

// Record binds a name to an address and an owner.
type Record struct {
	Name  string
	Owner string
	Addr  packet.Addr
	// Suspended marks a record disabled by a dispute ruling.
	Suspended bool
}

// Registry errors.
var (
	ErrTaken     = errors.New("naming: name already registered")
	ErrNotFound  = errors.New("naming: no such name")
	ErrSuspended = errors.New("naming: name suspended by dispute")
)

// Registry is the name store, in either the entangled or the isolated
// design.
type Registry struct {
	// Isolated selects the tussle-isolated three-namespace design.
	Isolated bool

	spaces map[Space]map[string]*Record
	// Disputes counts rulings applied; Collateral counts records whose
	// resolution broke although they were not the dispute's target
	// kind (machine/mailbox bindings lost to a brand fight).
	Disputes, Collateral int
}

// NewRegistry creates a registry in the chosen design.
func NewRegistry(isolated bool) *Registry {
	return &Registry{
		Isolated: isolated,
		spaces:   map[Space]map[string]*Record{},
	}
}

func (r *Registry) space(s Space) map[string]*Record {
	if !r.Isolated {
		s = SpaceAll
	}
	m, ok := r.spaces[s]
	if !ok {
		m = map[string]*Record{}
		r.spaces[s] = m
	}
	return m
}

// Register binds name to addr under owner in the given space. In the
// entangled design the space argument is advisory only — everything
// shares one namespace, so a machine name can collide with a brand.
func (r *Registry) Register(s Space, name, owner string, addr packet.Addr) (*Record, error) {
	m := r.space(s)
	if _, taken := m[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrTaken, name)
	}
	rec := &Record{Name: name, Owner: owner, Addr: addr}
	m[name] = rec
	return rec, nil
}

// Resolve returns the address bound to name in the given space.
func (r *Registry) Resolve(s Space, name string) (packet.Addr, error) {
	rec, ok := r.space(s)[name]
	if !ok {
		return packet.AddrNone, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if rec.Suspended {
		return packet.AddrNone, fmt.Errorf("%w: %q", ErrSuspended, name)
	}
	return rec.Addr, nil
}

// Lookup returns the record itself (for dispute processing and tests).
func (r *Registry) Lookup(s Space, name string) (*Record, bool) {
	rec, ok := r.space(s)[name]
	return rec, ok
}

// Dispute is a trademark claim: holder asserts rights over any name
// matching mark.
type Dispute struct {
	Mark   string
	Holder string
}

// matches reports whether a registered name infringes the mark. The
// simulated standard: the name contains the mark as a label or prefix.
type matchFunc func(name, mark string) bool

func defaultMatch(name, mark string) bool {
	return name == mark || strings.HasPrefix(name, mark+".") ||
		strings.HasPrefix(name, mark+"-") || strings.HasSuffix(name, "."+mark)
}

// Ruling summarizes the outcome of a dispute.
type Ruling struct {
	Dispute Dispute
	// Suspended lists records suspended by the ruling.
	Suspended []string
	// Collateral counts suspensions that hit machine/mailbox bindings
	// rather than brand uses — the spillover the isolated design
	// prevents.
	Collateral int
}

// FileDispute applies a trademark ruling. In the isolated design only
// the brand space is examined; machine and mailbox names are outside
// trademark's reach by construction. In the entangled design every
// matching name in the single namespace is suspended unless owned by the
// holder, and each suspension of a non-brand use is collateral damage.
func (r *Registry) FileDispute(d Dispute, brandOwnership map[string]string) Ruling {
	r.Disputes++
	ruling := Ruling{Dispute: d}
	apply := func(rec *Record, isBrandUse bool) {
		if rec.Owner == d.Holder || rec.Suspended {
			return
		}
		rec.Suspended = true
		ruling.Suspended = append(ruling.Suspended, rec.Name)
		if !isBrandUse {
			ruling.Collateral++
			r.Collateral++
		}
	}
	if r.Isolated {
		for _, rec := range r.spaces[SpaceBrand] {
			if defaultMatch(rec.Name, d.Mark) {
				apply(rec, true)
			}
		}
		return ruling
	}
	for name, rec := range r.spaces[SpaceAll] {
		if defaultMatch(name, d.Mark) {
			// In the entangled design we cannot tell a brand use from a
			// machine name except by asking the registrant's intent,
			// recorded in brandOwnership (name -> claimed use).
			isBrand := brandOwnership[name] == "brand"
			apply(rec, isBrand)
		}
	}
	return ruling
}
