package experiments

import (
	"fmt"

	"repro/internal/economics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// E3ProviderLockin tests §V-A1: when changing providers is cheap (easy
// renumbering — DHCP plus dynamic name update), consumers switch freely
// and competition disciplines prices; when addresses lock consumers in,
// incumbents keep prices high.
func E3ProviderLockin(seed uint64) *Result { return e3ProviderLockin(seed, nil) }

func e3ProviderLockin(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E3",
		Title: "provider lock-in from addressing",
		Claim: "§V-A1: mechanisms that make it easy to change addresses shift power to consumers: more switching, lower prices",
		Columns: []string{
			"mean-price", "switch-rate", "consumer-surplus", "hhi",
		},
	}
	for _, entrants := range []int{2, 4} {
		for _, lockin := range []string{"static-addrs", "dhcp+dyn-dns"} {
			rng := sim.NewRNG(seed)
			switchCost := 8.0 // renumbering every host: painful
			if lockin == "dhcp+dyn-dns" {
				switchCost = 0.5
			}
			// The incumbent probes willingness-to-pay; entrants compete
			// among themselves (Bertrand), so the incumbent's
			// sustainable markup is exactly what lock-in buys it.
			incumbent := &economics.Provider{
				Name: "incumbent", Cost: 2,
				Offer: economics.Offer{Price: 6, AllowsServers: true, AllowsEncryption: true},
				Strat: &economics.GreedPricing{Step: 0.25},
			}
			providers := []*economics.Provider{incumbent}
			for i := 0; i < entrants; i++ {
				providers = append(providers, &economics.Provider{
					Name: fmt.Sprintf("entrant-%d", i), Cost: 2,
					Offer: economics.Offer{Price: 6, AllowsServers: true, AllowsEncryption: true},
					Strat: economics.CompetitivePricing{Step: 0.25, Floor: 0.5},
				})
			}
			var consumers []*economics.Consumer
			for i := 0; i < 120; i++ {
				consumers = append(consumers, &economics.Consumer{
					ID: i, WTP: rng.Range(14, 22),
					SwitchCost: switchCost * rng.Range(0.5, 1.5),
					Provider:   0, // everyone starts on the incumbent
				})
			}
			m := economics.NewMarket(rng, providers, consumers)
			m.AttachObs(env.Registry())
			for _, c := range consumers {
				c.Provider = 0
			}
			m.Run(100)
			res.AddRow(fmt.Sprintf("entrants=%d %s", entrants, lockin),
				incumbent.Offer.Price,
				float64(m.Switches)/float64(100*len(consumers)),
				m.ConsumerSurplus(),
				m.HHI())
		}
	}
	res.Finding = fmt.Sprintf(
		"with 4 entrants, easy renumbering cuts the incumbent's sustainable price from %.2f to %.2f and raises consumer surplus from %.0f to %.0f",
		res.MustGet("entrants=4 static-addrs", "mean-price"),
		res.MustGet("entrants=4 dhcp+dyn-dns", "mean-price"),
		res.MustGet("entrants=4 static-addrs", "consumer-surplus"),
		res.MustGet("entrants=4 dhcp+dyn-dns", "consumer-surplus"))
	return res
}

// E4ValuePricing tests §V-A2: a server ban (value pricing) extracts the
// business-tier surcharge when consumers cannot respond, but tunneling
// lets savvy consumers sidestep it — and competition amplifies the
// leakage because a rival without the ban attracts the evaders.
func E4ValuePricing(seed uint64) *Result { return e4ValuePricing(seed, nil) }

func e4ValuePricing(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E4",
		Title: "value pricing vs tunneling",
		Claim: "§V-A2: customers sidestep server bans by switching provider if there is one, or by tunneling to disguise ports",
		Columns: []string{
			"isp-revenue", "tunnel-rate", "consumer-surplus",
		},
	}
	for _, competition := range []string{"monopoly", "duopoly"} {
		for _, tunneling := range []string{"no-tunnels", "tunnels"} {
			rng := sim.NewRNG(seed)
			providers := []*economics.Provider{{
				Name: "ban-isp", Cost: 2,
				Offer: economics.Offer{Price: 8, AllowsServers: false, ServerSurcharge: 3, AllowsEncryption: true},
				Strat: economics.StaticPricing{},
			}}
			if competition == "duopoly" {
				providers = append(providers, &economics.Provider{
					Name: "open-isp", Cost: 2,
					Offer: economics.Offer{Price: 9, AllowsServers: true, AllowsEncryption: true},
					Strat: economics.StaticPricing{},
				})
			}
			var consumers []*economics.Consumer
			for i := 0; i < 100; i++ {
				consumers = append(consumers, &economics.Consumer{
					ID: i, WTP: rng.Range(14, 20), SwitchCost: 1,
					RunsServer: i%2 == 0,
					CanTunnel:  tunneling == "tunnels" && i%4 == 0,
				})
			}
			m := economics.NewMarket(rng, providers, consumers)
			m.AttachObs(env.Registry())
			const rounds = 30
			m.Run(rounds)
			res.AddRow(fmt.Sprintf("%s %s", competition, tunneling),
				providers[0].Revenue,
				float64(m.Tunnels)/float64(rounds*len(consumers)),
				m.ConsumerSurplus())
		}
	}
	res.Finding = fmt.Sprintf(
		"tunnels cut the banning ISP's monopoly revenue from %.0f to %.0f; under duopoly the ban costs it customers outright (revenue %.0f)",
		res.MustGet("monopoly no-tunnels", "isp-revenue"),
		res.MustGet("monopoly tunnels", "isp-revenue"),
		res.MustGet("duopoly tunnels", "isp-revenue"))
	return res
}

// E5OpenAccess tests §V-A3: open access imposed at the natural tussle
// boundary — facilities vs ISP service — enables retail competition over
// one set of wires, lowering prices relative to a vertically integrated
// facility owner; but it transfers surplus away from the facility
// investor, which is the paper's caveat ("they probably will not work to
// the advantage of those that invest in the fiber").
func E5OpenAccess(seed uint64) *Result { return e5OpenAccess(seed, nil) }

func e5OpenAccess(seed uint64, env *obs.Env) *Result {
	res := &Result{
		ID:    "E5",
		Title: "municipal fiber open access at the facility/ISP boundary",
		Claim: "§V-A3: proposals that implement open access at the facility/service modularity boundary let each tussle play out independently",
		Columns: []string{
			"retail-price", "consumer-surplus", "facility-profit",
		},
	}
	const wholesale = 3.0 // per-subscriber fee paid to the facility owner
	for _, entrants := range []int{0, 1, 3, 5} {
		rng := sim.NewRNG(seed)
		// The facility owner also retails.
		owner := &economics.Provider{
			Name: "facility-owner", Cost: 1.5,
			Offer: economics.Offer{Price: 12, AllowsServers: true, AllowsEncryption: true},
			Strat: func() economics.Strategy {
				if entrants == 0 {
					return &economics.GreedPricing{Step: 0.25}
				}
				return economics.CompetitivePricing{Step: 0.25, Floor: 0.5}
			}(),
		}
		providers := []*economics.Provider{owner}
		for i := 0; i < entrants; i++ {
			providers = append(providers, &economics.Provider{
				Name: fmt.Sprintf("entrant-%d", i),
				// Entrants pay wholesale per subscriber on top of their
				// own service cost.
				Cost:  1.0 + wholesale,
				Offer: economics.Offer{Price: 11 - float64(i), AllowsServers: true, AllowsEncryption: true},
				Strat: economics.CompetitivePricing{Step: 0.25, Floor: 0.5},
			})
		}
		var consumers []*economics.Consumer
		for i := 0; i < 150; i++ {
			consumers = append(consumers, &economics.Consumer{ID: i, WTP: rng.Range(14, 22), SwitchCost: 1})
		}
		m := economics.NewMarket(rng, providers, consumers)
		m.AttachObs(env.Registry())
		const rounds = 80
		m.Run(rounds)
		// Facility profit = owner's retail profit + wholesale revenue
		// from entrant subscribers.
		wholesaleRev := 0.0
		for _, p := range providers[1:] {
			wholesaleRev += float64(p.Subscribers) * wholesale * rounds
		}
		res.AddRow(fmt.Sprintf("entrants=%d", entrants),
			m.MeanPrice(), m.ConsumerSurplus(), owner.Profit+wholesaleRev)
	}
	res.Finding = fmt.Sprintf(
		"opening the facility to 5 retail entrants drops the retail price from %.2f to %.2f and raises consumer surplus %.0f→%.0f, while facility profit falls %.0f→%.0f",
		res.MustGet("entrants=0", "retail-price"),
		res.MustGet("entrants=5", "retail-price"),
		res.MustGet("entrants=0", "consumer-surplus"),
		res.MustGet("entrants=5", "consumer-surplus"),
		res.MustGet("entrants=0", "facility-profit"),
		res.MustGet("entrants=5", "facility-profit"))
	return res
}
