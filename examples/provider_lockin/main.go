// Provider lock-in: the §V-A1 economics scenario. One incumbent ISP
// probes willingness-to-pay while entrants compete; the only difference
// between the two runs is whether consumers can renumber cheaply
// (DHCP + dynamic name update) or are locked in by provider-rooted
// addresses. The example also shows the addressing mechanics themselves:
// a host renumbering across providers with a dynamic name update.
//
// Run with: go run ./examples/provider_lockin
package main

import (
	"fmt"

	"os"
	"repro/internal/economics"
	"repro/internal/experiments"
	"repro/internal/naming"
	"repro/internal/packet"
	"repro/internal/sim"
)

func main() {
	// Part 1: the mechanism. Addresses are provider-rooted, so changing
	// providers means renumbering — unless a dynamic name layer absorbs
	// the change.
	fmt.Println("— the addressing mechanics —")
	oldAddr := packet.MakeAddr(12, 7) // host 7 inside provider 12
	newAddr := packet.MakeAddr(31, 7) // same host after switching to provider 31
	fmt.Printf("  host address under provider 12: %v\n", oldAddr)
	fmt.Printf("  after switching to provider 31:  %v (the address IS the provider)\n", newAddr)

	root := naming.NewRoot()
	zone := root.Delegate("example")
	zone.Bind("www", oldAddr)
	now := sim.Time(0)
	res := naming.NewResolver(root, 30*sim.Second, func() sim.Time { return now })
	a, _ := res.Resolve("www.example")
	fmt.Printf("  www.example resolves to %v\n", a)
	zone.Bind("www", newAddr) // dynamic update on renumber
	res.Invalidate("www.example")
	a, _ = res.Resolve("www.example")
	fmt.Printf("  after dynamic update:            %v — correspondents never noticed\n", a)

	// Part 2: the market consequence, small scale.
	fmt.Println("\n— the market consequence —")
	for _, label := range []string{"locked-in (static addresses)", "mobile (dhcp + dynamic names)"} {
		rng := sim.NewRNG(3)
		switchCost := 8.0
		if label[0] == 'm' {
			switchCost = 0.5
		}
		incumbent := &economics.Provider{
			Name: "incumbent", Cost: 2,
			Offer: economics.Offer{Price: 6, AllowsServers: true, AllowsEncryption: true},
			Strat: &economics.GreedPricing{Step: 0.25},
		}
		entrant := &economics.Provider{
			Name: "entrant", Cost: 2,
			Offer: economics.Offer{Price: 6, AllowsServers: true, AllowsEncryption: true},
			Strat: economics.CompetitivePricing{Step: 0.25, Floor: 0.5},
		}
		var consumers []*economics.Consumer
		for i := 0; i < 60; i++ {
			consumers = append(consumers, &economics.Consumer{
				ID: i, WTP: rng.Range(14, 22), SwitchCost: switchCost * rng.Range(0.5, 1.5), Provider: 0,
			})
		}
		m := economics.NewMarket(rng, []*economics.Provider{incumbent, entrant}, consumers)
		for _, c := range consumers {
			c.Provider = 0
		}
		m.Run(100)
		fmt.Printf("  %-32s incumbent price %.2f, switches %d, surplus %.0f\n",
			label, incumbent.Offer.Price, m.Switches, m.ConsumerSurplus())
	}

	// Part 3: the full experiment table.
	fmt.Println("\n— the E3 sweep —")
	experiments.E3ProviderLockin(42).Render(os.Stdout)
}
