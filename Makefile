# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all build vet test race bench-smoke bench bench-json experiments ci

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel experiment runner is the repo's only intentional
# concurrency; -race on every change keeps it honest.
race:
	$(GO) test -race ./...

# One-iteration smoke of the suite benchmarks, then a quick measurement
# run compared against the committed baseline: catches regressions that
# break the benches and ns/op regressions in the same pass. The gate's
# default tolerance is 10% (see tussle-bench -compare); CI machines are
# noisy and the fastest experiments run in microseconds, where scheduler
# jitter alone moves ns/op by tens of percent, so this target loosens it
# to 50% — still far below the multiples a real hot-path regression
# produces.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkAllExperiments' -benchtime=1x -benchmem .
	$(GO) run ./cmd/tussle-bench -quiet -json /tmp/bench-smoke.json -iters 5 >/dev/null
	$(GO) run ./cmd/tussle-bench -compare -tolerance 0.5 BENCH_suite.json /tmp/bench-smoke.json

# Full benchmark pass over every per-experiment benchmark.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Regenerate the recorded perf baseline (per-experiment ns/op and
# allocs/op plus sequential-vs-parallel suite wall time).
bench-json:
	$(GO) run ./cmd/tussle-bench -quiet -json BENCH_suite.json >/dev/null

# Regenerate EXPERIMENTS.md from the current code.
experiments:
	$(GO) run ./cmd/tussle-bench -markdown > EXPERIMENTS.md

ci: vet build test race bench-smoke
