package main

// The policy sweep: committable measurements of the metered policy VM,
// recorded in the suiteBench schema so the existing -compare gate holds
// BENCH_policy.json against a fresh run. One op is one policy
// evaluation (compile once, evaluate count times through the pooled
// dense-slot path under a fresh per-invocation budget — the exact
// per-packet discipline of the netsim/wire choice points). Figures are
// per-eval minima across iterations, so the zero-tolerance allocs/op
// gate pins the compiled scalar steady state at literally zero.

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/policy"
)

// policyShapes are the three policy shapes the VM is sized for: a scalar
// predicate (the common forwarding gate), a folded-constant list
// membership (ACL style), and a three-level nested boolean (composed
// stakeholder clauses).
var policyShapes = []struct {
	id    string
	src   string
	count int
}{
	{"policy-scalar", `port == 443 || port == 80`, 5_000_000},
	{"policy-member", `port in [80, 443, 8080, 8443]`, 5_000_000},
	{"policy-nested", `((paid && port == 443) || (ttl > 4 && port == 80)) && (!blocked || paid)`, 2_000_000},
}

// policySlots builds one slot vector for a compiled shape, covering the
// attribute vocabulary the shapes above draw from.
func policySlots(p *policy.Program) ([]policy.Value, error) {
	vals := map[string]policy.Value{
		"port":    policy.Num(80),
		"ttl":     policy.Num(12),
		"paid":    policy.Bool(false),
		"blocked": policy.Bool(false),
	}
	attrs := p.Attrs()
	slots := make([]policy.Value, len(attrs))
	for i, name := range attrs {
		v, ok := vals[name]
		if !ok {
			return nil, fmt.Errorf("no bench value for attribute %q", name)
		}
		slots[i] = v
	}
	return slots, nil
}

// benchPolicy measures the policy-VM workloads; ns/op is the per-eval
// minimum across iterations, allocs the per-eval minimum.
func benchPolicy(iters int) suiteBench {
	sb := suiteBench{
		Iters:       iters,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: 1,
		SpeedupNote: "policy sweep: single-goroutine per-eval figures through the pooled dense-slot VM path",
	}
	var m0, m1 runtime.MemStats
	for _, sh := range policyShapes {
		prog, err := policy.CompileText(sh.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tussle-bench: %s: %v\n", sh.id, err)
			os.Exit(1)
		}
		slots, err := policySlots(prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tussle-bench: %s: %v\n", sh.id, err)
			os.Exit(1)
		}
		run := func(n int) {
			for i := 0; i < n; i++ {
				b := policy.NewBudget(4096, 4096)
				if _, err := prog.RunSlots(slots, &b); err != nil {
					fmt.Fprintf(os.Stderr, "tussle-bench: %s: %v\n", sh.id, err)
					os.Exit(1)
				}
			}
		}
		run(min(sh.count, 10_000)) // warm the VM pool
		var minNs int64
		var minAllocs, minBytes uint64
		for i := 0; i < iters; i++ {
			runtime.GC()
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			run(sh.count)
			el := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&m1)
			if i == 0 || el < minNs {
				minNs = el
			}
			if a := m1.Mallocs - m0.Mallocs; i == 0 || a < minAllocs {
				minAllocs = a
			}
			if b := m1.TotalAlloc - m0.TotalAlloc; i == 0 || b < minBytes {
				minBytes = b
			}
		}
		n := uint64(sh.count)
		sb.Experiments = append(sb.Experiments, expBench{
			ID:          sh.id,
			NsPerOp:     minNs / int64(n),
			AllocsPerOp: minAllocs / n,
			BytesPerOp:  minBytes / n,
		})
	}
	return sb
}
