package apps

import (
	"repro/internal/sim"
)

// WebOrigin serves content with a fixed round-trip latency.
type WebOrigin struct {
	Name    string
	Latency sim.Time
	content map[string]int // name -> size
	// Requests counts origin hits.
	Requests int
}

// NewWebOrigin creates an origin server.
func NewWebOrigin(name string, latency sim.Time) *WebOrigin {
	return &WebOrigin{Name: name, Latency: latency, content: map[string]int{}}
}

// Put publishes content.
func (o *WebOrigin) Put(name string, size int) { o.content[name] = size }

// Get fetches content, returning its size and the latency paid.
func (o *WebOrigin) Get(name string) (int, sim.Time, bool) {
	size, ok := o.content[name]
	if !ok {
		return 0, o.Latency, false
	}
	o.Requests++
	return size, o.Latency, true
}

// WebCache is the §VI-A mature-application enhancement: an in-network
// cache that cuts latency for popular content — and one more point of
// failure and control. LRU with a fixed entry capacity.
type WebCache struct {
	Name     string
	Capacity int
	Latency  sim.Time // cache hit latency
	Origin   *WebOrigin

	entries map[string]int
	order   []string // LRU order, most recent last
	// Hits and Misses count outcomes; Broken simulates a failed cache
	// (the added failure point).
	Hits, Misses int
	Broken       bool
}

// NewWebCache creates a cache in front of an origin.
func NewWebCache(name string, capacity int, latency sim.Time, origin *WebOrigin) *WebCache {
	return &WebCache{Name: name, Capacity: capacity, Latency: latency, Origin: origin, entries: map[string]int{}}
}

// Get fetches through the cache. A broken cache fails the request
// outright — the reliability cost of in-network function (§VI-A: "bits
// of applications 'in the network' increase the number of points of
// failure").
func (c *WebCache) Get(name string) (int, sim.Time, bool) {
	if c.Broken {
		return 0, 0, false
	}
	if size, ok := c.entries[name]; ok {
		c.Hits++
		c.touch(name)
		return size, c.Latency, true
	}
	c.Misses++
	size, lat, ok := c.Origin.Get(name)
	if !ok {
		return 0, lat, false
	}
	c.insert(name, size)
	return size, c.Latency + lat, true
}

func (c *WebCache) touch(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), name)
			return
		}
	}
}

func (c *WebCache) insert(name string, size int) {
	if c.Capacity <= 0 {
		return
	}
	if len(c.entries) >= c.Capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[name] = size
	c.order = append(c.order, name)
}

// HitRate reports the cache's hit fraction.
func (c *WebCache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// VoIPScore maps one-way delay to a 1–5 quality score, a compressed
// E-model: excellent below 150 ms, degrading linearly, unusable past
// 400 ms. This is the demand curve behind §VII's Internet Telephony
// example — VoIP is the application whose value depends on QoS.
func VoIPScore(delay sim.Time) float64 {
	ms := delay.Millis()
	switch {
	case ms <= 150:
		return 4.4
	case ms >= 400:
		return 1.0
	default:
		return 4.4 - (ms-150)*(3.4/250)
	}
}

// VoIPAcceptable reports whether users tolerate the call quality.
func VoIPAcceptable(delay sim.Time) bool { return VoIPScore(delay) >= 3.0 }
