// Package chaos is the deterministic fault-injection engine: a Plan is
// an ordered list of timed fault events — link failures and flaps, node
// crashes, partitions, packet-level impairment, byzantine advertisement
// bursts — replayed onto a netsim.Network through the shared event
// scheduler. Every random choice (impairment coin flips, flap phase)
// comes from a single seeded RNG owned by the engine, so a plan replayed
// at the same seed produces a byte-identical simulation: the same
// contract the experiment suite already holds (§ determinism in
// DESIGN.md).
//
// The paper's §VI-A is the motivation: "failures of transparency will
// occur — design what happens then". The engine supplies the failures;
// the observers registered on it (routing re-convergence adapters in
// reroute.go, transport backoff, traceroute diagnostics) are the
// "design what happens then".
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind names a fault event type. The string values are the JSON schema.
type Kind string

// Fault event kinds.
const (
	// LinkDown / LinkUp fail and restore the A–B link.
	LinkDown Kind = "link-down"
	LinkUp   Kind = "link-up"
	// LinkFlap toggles the A–B link Count times (down, up, down, ...)
	// spaced Period apart, starting at the event time.
	LinkFlap Kind = "link-flap"
	// NodeCrash / NodeRecover crash and recover router Node.
	NodeCrash   Kind = "node-crash"
	NodeRecover Kind = "node-recover"
	// Partition fails every link with exactly one endpoint in Group,
	// bipartitioning the network; Heal undoes the most recent partition
	// (they nest like a stack).
	Partition Kind = "partition"
	Heal      Kind = "heal"
	// Impair installs packet-level damage on the A–B link (corruption,
	// duplication, reorder jitter); ClearImpair removes it.
	Impair      Kind = "impair"
	ClearImpair Kind = "clear-impair"
	// ByzantineBurst floods Count lying advertisements from Node into
	// the bound AdDatabase: every adjacent link at cost Cost, plus
	// phantom links to the Phantoms nodes.
	ByzantineBurst Kind = "byzantine-burst"
)

// Event is one timed fault. Which fields matter depends on Kind; see the
// Kind constants. Times are milliseconds of simulation time so plans are
// human-writable JSON.
type Event struct {
	AtMs float64 `json:"at_ms"`
	Kind Kind    `json:"kind"`

	A     topology.NodeID   `json:"a,omitempty"`
	B     topology.NodeID   `json:"b,omitempty"`
	Node  topology.NodeID   `json:"node,omitempty"`
	Group []topology.NodeID `json:"group,omitempty"`

	PeriodMs float64 `json:"period_ms,omitempty"`
	Count    int     `json:"count,omitempty"`

	Corrupt         float64 `json:"corrupt,omitempty"`
	Duplicate       float64 `json:"duplicate,omitempty"`
	ReorderProb     float64 `json:"reorder_prob,omitempty"`
	ReorderJitterMs float64 `json:"reorder_jitter_ms,omitempty"`

	Cost     float64           `json:"cost,omitempty"`
	Phantoms []topology.NodeID `json:"phantoms,omitempty"`
}

// At returns the event's simulation time.
func (e *Event) At() sim.Time { return msToTime(e.AtMs) }

// Period returns the flap interval as simulation time.
func (e *Event) Period() sim.Time { return msToTime(e.PeriodMs) }

func msToTime(ms float64) sim.Time { return sim.Time(ms * float64(sim.Millisecond)) }

// Plan is a named, seeded fault schedule.
type Plan struct {
	Name string `json:"name"`
	// Seed drives every random choice the engine makes while replaying
	// the plan (impairment coin flips). Replays at the same seed are
	// byte-identical.
	Seed   uint64  `json:"seed"`
	Events []Event `json:"events"`
}

// ParsePlan decodes and validates a JSON plan. The decoder is strict
// (unknown fields are errors) so schema typos fail loudly instead of
// silently injecting nothing.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parse plan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("chaos: parse plan: trailing data after plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Encode renders the plan as canonical indented JSON. Encode∘ParsePlan
// is a fixed point: parsing the output and re-encoding reproduces it
// byte for byte (the FuzzFaultPlan invariant).
func (p *Plan) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: encode plan: %w", err)
	}
	return append(buf, '\n'), nil
}

// Validate checks every event's fields for its kind. It does not check
// topology references (the engine does that at schedule time, when it
// has the graph).
func (p *Plan) Validate() error {
	for i := range p.Events {
		if err := p.Events[i].validate(); err != nil {
			return fmt.Errorf("chaos: event %d (%s): %w", i, p.Events[i].Kind, err)
		}
	}
	return nil
}

func (e *Event) validate() error {
	if !finite(e.AtMs) || e.AtMs < 0 {
		return fmt.Errorf("at_ms %v out of range", e.AtMs)
	}
	needLink := func() error {
		if e.A == 0 || e.B == 0 || e.A == e.B {
			return fmt.Errorf("needs distinct link endpoints a/b, got %d/%d", e.A, e.B)
		}
		return nil
	}
	switch e.Kind {
	case LinkDown, LinkUp, ClearImpair:
		return needLink()
	case LinkFlap:
		if err := needLink(); err != nil {
			return err
		}
		if !finite(e.PeriodMs) || e.PeriodMs <= 0 {
			return fmt.Errorf("flap needs period_ms > 0, got %v", e.PeriodMs)
		}
		if e.Count < 1 {
			return fmt.Errorf("flap needs count >= 1, got %d", e.Count)
		}
	case NodeCrash, NodeRecover:
		if e.Node == 0 {
			return fmt.Errorf("needs node")
		}
	case Partition:
		if len(e.Group) == 0 {
			return fmt.Errorf("needs a non-empty group")
		}
	case Heal:
		// no fields
	case Impair:
		if err := needLink(); err != nil {
			return err
		}
		for _, pr := range []struct {
			name string
			v    float64
		}{{"corrupt", e.Corrupt}, {"duplicate", e.Duplicate}, {"reorder_prob", e.ReorderProb}} {
			if !finite(pr.v) || pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("%s %v outside [0,1]", pr.name, pr.v)
			}
		}
		if e.Corrupt == 0 && e.Duplicate == 0 && e.ReorderProb == 0 {
			return fmt.Errorf("impair with no effect: set corrupt, duplicate, or reorder_prob")
		}
		if !finite(e.ReorderJitterMs) || e.ReorderJitterMs < 0 {
			return fmt.Errorf("reorder_jitter_ms %v out of range", e.ReorderJitterMs)
		}
		if e.ReorderProb > 0 && e.ReorderJitterMs == 0 {
			return fmt.Errorf("reorder_prob without reorder_jitter_ms does nothing")
		}
	case ByzantineBurst:
		if e.Node == 0 {
			return fmt.Errorf("needs node")
		}
		if e.Count < 1 {
			return fmt.Errorf("burst needs count >= 1, got %d", e.Count)
		}
		if !finite(e.Cost) || e.Cost <= 0 {
			return fmt.Errorf("burst needs cost > 0, got %v", e.Cost)
		}
	default:
		return fmt.Errorf("unknown kind")
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
