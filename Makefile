# Developer entry points. CI (.github/workflows/ci.yml) fans these out
# across parallel jobs — lint (vet+build), test, race, bench-smoke,
# fuzz-smoke, and golden-check — instead of one serial `make ci`; the
# aggregate `ci` target remains the local equivalent of the full matrix.

GO ?= go

.PHONY: all build vet test race bench-smoke bench bench-json scale-json scale-smoke wire-json wire-smoke wire-multipath-smoke policy-json policy-smoke shard-determinism experiments metrics fuzz-smoke golden-check invariant-sweep multipath-chaos cover ci

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel experiment runner is the repo's only intentional
# concurrency; -race on every change keeps it honest.
race:
	$(GO) test -race ./...

# One-iteration smoke of the suite benchmarks, then a quick measurement
# run compared against the committed baseline: catches regressions that
# break the benches, ns/op regressions, and allocs/op growth (gated at
# zero tolerance — alloc counts are deterministic) in the same pass. The
# ns/op gate's default tolerance is 10% (see tussle-bench -compare); CI
# machines are noisy and the fastest experiments run in microseconds,
# where scheduler jitter alone moves ns/op by tens of percent, so this
# target loosens it to 50% — still far below the multiples a real
# hot-path regression produces.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkAllExperiments' -benchtime=1x -benchmem .
	$(GO) run ./cmd/tussle-bench -quiet -json /tmp/bench-smoke.json -iters 5 >/dev/null
	$(GO) run ./cmd/tussle-bench -compare -tolerance 0.5 BENCH_suite.json /tmp/bench-smoke.json

# Full benchmark pass over every per-experiment benchmark.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Regenerate the recorded perf baseline (per-experiment ns/op and
# allocs/op plus sequential-vs-parallel suite wall time).
bench-json:
	$(GO) run ./cmd/tussle-bench -quiet -json BENCH_suite.json >/dev/null

# Regenerate the committed scale perf baseline: end-to-end sharded-core
# runs at 1k/10k/100k nodes (the BenchmarkScaleForward sweep as
# committable JSON, gated by the same -compare machinery as
# BENCH_suite.json).
scale-json:
	$(GO) run ./cmd/tussle-bench -scale-json BENCH_scale.json -iters 2

# Scale smoke: a 100k-node, 2M-packet run through the sharded core
# (sized to finish in well under five minutes on a 2-core runner), then
# a quick scale measurement compared against the committed baseline.
scale-smoke:
	$(GO) run ./cmd/netsim -nodes 100000 -shards 2 -packets 2000000 -seed 42
	$(GO) run ./cmd/tussle-bench -scale-json /tmp/scale-smoke.json -iters 2
	$(GO) run ./cmd/tussle-bench -compare -tolerance 0.5 BENCH_scale.json /tmp/scale-smoke.json

# Regenerate the committed wire perf baseline: the live UDP engine's
# decision kernel and loopback round trip, per-packet ns/op and
# allocs/op in the same JSON schema -compare gates everything else with.
wire-json:
	$(GO) run ./cmd/tussle-bench -wire-json BENCH_wire.json -iters 3

# Wire smoke (<2 min): the real tussled binary serving TIP over real
# UDP — background server, blast client pacing against the echoes, then
# SIGINT to exercise the shutdown/stats path; the grep fails the target
# if the server's final counters never appear. A quick wire measurement
# then gates perf against the committed baseline (tolerance rationale as
# in bench-smoke).
wire-smoke:
	$(GO) build -o /tmp/tussled-smoke ./cmd/tussled
	/tmp/tussled-smoke -listen 127.0.0.1:19099 -echo >/tmp/wire-smoke.log 2>&1 & \
	  pid=$$!; sleep 1; \
	  /tmp/tussled-smoke -blast 127.0.0.1:19099 -count 50000 -echo || { kill $$pid; exit 1; }; \
	  kill -INT $$pid; wait $$pid
	grep -q 'received=' /tmp/wire-smoke.log
	grep -q 'delivered=' /tmp/wire-smoke.log
	$(GO) run ./cmd/tussle-bench -wire-json /tmp/wire-smoke.json -iters 2
	$(GO) run ./cmd/tussle-bench -compare -tolerance 0.5 BENCH_wire.json /tmp/wire-smoke.json

# Wire-multipath smoke (<2 min): striped >=10MB transfers over real UDP
# through the tussled binary, twice. Run 1: shortest-k against a server
# whose path-2 impairment starts enabled — SIGUSR1 lifts it mid-run —
# and the transfer must still complete byte-exact (the blast side's
# payload sha256 equals the server's reassembled stream sha256) with at
# least one demotion recorded. Run 2: loss-adaptive against a clean
# server — all three paths must carry segments. A quick wire measurement
# then gates the multipath round-trip row (ns/op and its allocs/op at
# zero tolerance) against the committed baseline.
wire-multipath-smoke:
	$(GO) build -o /tmp/tussled-mp ./cmd/tussled
	/tmp/tussled-mp -listen 127.0.0.1:19199 -node 1 -mprecv 7777 -impair-path 2 -impair-port 7777 -impair-on >/tmp/mp-smoke1.log 2>&1 & \
	  pid=$$!; sleep 1; \
	  { sleep 2; kill -USR1 $$pid 2>/dev/null; } & \
	  /tmp/tussled-mp -blast 127.0.0.1:19199 -multipath -mpstrategy shortest-k -mpbytes 10485760 -src 2.1 -dst 1.1 > /tmp/mp-blast1.out || { kill $$pid; exit 1; }; \
	  kill -INT $$pid; wait $$pid
	grep -q 'done=true' /tmp/mp-blast1.out
	grep -Eq 'demotions=[1-9]' /tmp/mp-blast1.out
	test "$$(grep -o 'payload-sha256=[0-9a-f]*' /tmp/mp-blast1.out | cut -d= -f2)" = "$$(grep -o 'stream-sha256=[0-9a-f]*' /tmp/mp-smoke1.log | cut -d= -f2)"
	/tmp/tussled-mp -listen 127.0.0.1:19199 -node 1 -mprecv 7777 >/tmp/mp-smoke2.log 2>&1 & \
	  pid=$$!; sleep 1; \
	  /tmp/tussled-mp -blast 127.0.0.1:19199 -multipath -mpstrategy loss-adaptive -mpbytes 10485760 -src 2.1 -dst 1.1 > /tmp/mp-blast2.out || { kill $$pid; exit 1; }; \
	  kill -INT $$pid; wait $$pid
	grep -q 'done=true' /tmp/mp-blast2.out
	test "$$(grep -o 'payload-sha256=[0-9a-f]*' /tmp/mp-blast2.out | cut -d= -f2)" = "$$(grep -o 'stream-sha256=[0-9a-f]*' /tmp/mp-smoke2.log | cut -d= -f2)"
	test "$$(grep -c 'multipath-recv: path=' /tmp/mp-smoke2.log)" -eq 3
	$(GO) run ./cmd/tussle-bench -wire-json /tmp/mp-smoke.json -iters 2
	$(GO) run ./cmd/tussle-bench -compare -tolerance 0.5 BENCH_wire.json /tmp/mp-smoke.json

# Regenerate the committed policy-VM perf baseline: per-eval ns/op and
# allocs/op for the scalar / membership / nested policy shapes through
# the pooled dense-slot VM path (the BenchmarkPolicyEval sweep as
# committable JSON, gated by the same -compare machinery).
policy-json:
	$(GO) run ./cmd/tussle-bench -policy-json BENCH_policy.json -iters 5

# Policy-VM smoke (<2 min): the differential suite (compiled VM vs
# tree-walking reference on tabled, random, and fuzz-corpus inputs), the
# budget-exhaustion canary (a 100k-clause hostile policy must stop at its
# step budget, not hang), then a quick policy measurement gated against
# the committed baseline — allocs/op at zero tolerance, so the compiled
# scalar steady state staying zero-alloc is CI-enforced (tolerance
# rationale as in bench-smoke).
policy-smoke:
	$(GO) test -run 'TestVMDifferential|TestRunSlotsMatchesRun|TestCompiledDocumentMatchesEvaluate|FuzzCompileEval' -count=1 ./internal/policy
	$(GO) test -run 'TestBudget|TestAllocBudgetAccounting|TestVMScalarZeroAlloc|TestEvalUnknownAttrZeroAlloc' -count=1 -v ./internal/policy | grep -q 'PASS.*TestBudgetCanaryDeepPolicy'
	$(GO) run ./cmd/tussle-bench -policy-json /tmp/policy-smoke.json -iters 3
	$(GO) run ./cmd/tussle-bench -compare -tolerance 0.5 BENCH_policy.json /tmp/policy-smoke.json

# Shard-count determinism: the scale digest on stdout AND the merged
# -metrics snapshot must be byte-identical at shards 1/2/4/8, sequential
# or parallel, with and without chaos, at two seeds.
shard-determinism:
	@for seed in 42 7; do \
	  for chaos in "" "-chaos"; do \
	    $(GO) run ./cmd/netsim -nodes 5000 -shards 1 -seed $$seed $$chaos -metrics /tmp/shard-ref-m.json 2>/dev/null > /tmp/shard-ref.out || exit 1; \
	    for k in 2 4 8; do \
	      $(GO) run ./cmd/netsim -nodes 5000 -shards $$k -seed $$seed $$chaos -metrics /tmp/shard-par-m.json 2>/dev/null > /tmp/shard-par.out || exit 1; \
	      cmp /tmp/shard-ref.out /tmp/shard-par.out || { echo "shard-determinism: shards=$$k parallel seed=$$seed chaos='$$chaos' digest diverged"; exit 1; }; \
	      cmp /tmp/shard-ref-m.json /tmp/shard-par-m.json || { echo "shard-determinism: shards=$$k parallel seed=$$seed chaos='$$chaos' metrics diverged"; exit 1; }; \
	      $(GO) run ./cmd/netsim -nodes 5000 -shards $$k -parallel=false -seed $$seed $$chaos -metrics /tmp/shard-seq-m.json 2>/dev/null > /tmp/shard-seq.out || exit 1; \
	      cmp /tmp/shard-ref.out /tmp/shard-seq.out || { echo "shard-determinism: shards=$$k lockstep seed=$$seed chaos='$$chaos' digest diverged"; exit 1; }; \
	      cmp /tmp/shard-ref-m.json /tmp/shard-seq-m.json || { echo "shard-determinism: shards=$$k lockstep seed=$$seed chaos='$$chaos' metrics diverged"; exit 1; }; \
	    done; \
	  done; \
	done; \
	echo "shard-determinism: digests and metrics identical at shards 1/2/4/8 (lockstep+parallel, +/-chaos, seeds 42+7)"

# Regenerate EXPERIMENTS.md from the current code.
experiments:
	$(GO) run ./cmd/tussle-bench -markdown > EXPERIMENTS.md

# Run the instrumented suite and write the metric snapshot (suite
# aggregate plus per-experiment breakdown). Deterministic per seed.
metrics:
	$(GO) run ./cmd/tussle-bench -quiet -metrics /tmp/metrics.json >/dev/null

# Short fuzz passes over the TIP decoder (safety invariants on arbitrary
# bytes, then DecodeReuse-vs-DecodeFrom differential) and the chaos plan
# parser (canonical-form round-trip). The regexps are anchored because
# -fuzz must match exactly one target.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=30s ./internal/packet
	$(GO) test -fuzz='^FuzzDecodeReuse$$' -fuzztime=30s ./internal/packet
	$(GO) test -fuzz='^FuzzFaultPlan$$' -fuzztime=30s ./internal/chaos
	$(GO) test -fuzz='^FuzzShrinkRoundTrip$$' -fuzztime=30s ./internal/invariant
	$(GO) test -fuzz='^FuzzCompileEval$$' -fuzztime=30s ./internal/policy
	$(GO) test -fuzz='^FuzzDisjointPaths$$' -fuzztime=30s ./internal/routing/srcroute
	$(GO) test -fuzz='^FuzzMultipathAck$$' -fuzztime=30s ./internal/transport/multipath

# Property-based invariant sweeps: seeded random topologies, traffic, and
# fault plans run with the runtime invariant checker armed (see
# cmd/tussle-check). Two fixed seeds so the CI corpus is reproducible;
# failures shrink to minimal reproducers automatically.
invariant-sweep:
	$(GO) run ./cmd/tussle-check -trials 500 -seed 42
	$(GO) run ./cmd/tussle-check -trials 500 -seed 7
	$(GO) run ./cmd/tussle-check -sharded -trials 500 -seed 42
	$(GO) run ./cmd/tussle-check -sharded -trials 500 -seed 7

# Multipath-chaos smoke: both multipath experiments (E29 availability
# under the standard fault schedule, E30 partition reconvergence) must
# render byte-identically at -parallel 1 and 4 for two seeds — the
# striped data plane's determinism pinned end to end — followed by
# invariant sweeps with every generated transfer forced onto the
# multipath sender.
multipath-chaos:
	@for seed in 42 7; do \
	  $(GO) run ./cmd/tussle-bench -seed $$seed -only E29,E30 -parallel 1 > /tmp/mp-seq.out || exit 1; \
	  $(GO) run ./cmd/tussle-bench -seed $$seed -only E29,E30 -parallel 4 > /tmp/mp-par.out || exit 1; \
	  cmp /tmp/mp-seq.out /tmp/mp-par.out || { echo "multipath-chaos: seed $$seed E29/E30 digest diverged across -parallel 1/4"; exit 1; }; \
	  $(GO) run ./cmd/tussle-check -multipath -trials 300 -seed $$seed || exit 1; \
	done; \
	echo "multipath-chaos: E29/E30 digests identical across -parallel 1/4 (seeds 42+7); forced-multipath sweeps clean"

# Per-package statement coverage (the CI cover gate publishes this table
# in the job summary).
cover:
	$(GO) test -cover ./...

# Golden-determinism guard: regenerating EXPERIMENTS.md from the current
# code must be a no-op, or a behavior change slipped through without its
# goldens being regenerated intentionally.
golden-check: experiments
	git diff --exit-code EXPERIMENTS.md

ci: vet build test race bench-smoke fuzz-smoke golden-check invariant-sweep multipath-chaos shard-determinism scale-smoke wire-smoke wire-multipath-smoke policy-smoke
