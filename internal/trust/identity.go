// Package trust implements the identity and trust framework of §V-B of
// the paper: not a single global identity scheme (which the paper argues
// is "a bad idea") but a framework of schemes — anonymous, pseudonymous,
// and certified — plus the third parties that mediate trust between
// strangers: certificate authorities, reputation services, and liability
// guarantors ("credit card companies limit our liability to $50").
//
// Signatures and certificates are real (crypto/ed25519); key generation
// is driven by the simulation RNG so runs stay deterministic.
package trust

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Scheme is how a party chooses to identify itself. The numbering matches
// the wire constants in internal/packet.
type Scheme uint8

// Identity schemes (§V-B1: "there are lots of ways that parties choose to
// identify themselves to each other").
const (
	// Anonymous: no linkable identity. Visible anonymity is the paper's
	// compromise — others can see you chose it and react.
	Anonymous Scheme = 0
	// Pseudonymous: a stable self-chosen name with a key, linkable
	// across interactions but not bound to a real-world identity.
	Pseudonymous Scheme = 1
	// Certified: a name vouched for by an authority chain.
	Certified Scheme = 2
)

func (s Scheme) String() string {
	switch s {
	case Anonymous:
		return "anonymous"
	case Pseudonymous:
		return "pseudonymous"
	default:
		return "certified"
	}
}

// rngReader adapts sim.RNG to io.Reader for deterministic key generation.
type rngReader struct{ r *sim.RNG }

func (rr rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(rr.r.Uint64())
	}
	return len(p), nil
}

// Principal is a key-holding party.
type Principal struct {
	Name   string
	Scheme Scheme
	Pub    ed25519.PublicKey
	priv   ed25519.PrivateKey
}

// NewPrincipal generates a principal with a fresh deterministic keypair.
func NewPrincipal(name string, scheme Scheme, rng *sim.RNG) *Principal {
	pub, priv, err := ed25519.GenerateKey(rngReader{rng})
	if err != nil {
		panic("trust: key generation cannot fail with a working reader: " + err.Error())
	}
	return &Principal{Name: name, Scheme: scheme, Pub: pub, priv: priv}
}

// Sign signs msg with the principal's private key.
func (p *Principal) Sign(msg []byte) []byte {
	return ed25519.Sign(p.priv, msg)
}

// Verify checks a signature by this principal.
func (p *Principal) Verify(msg, sig []byte) bool {
	return ed25519.Verify(p.Pub, msg, sig)
}

// Certificate binds a subject key and attributes under an issuer's
// signature, valid until Expiry (simulated time).
type Certificate struct {
	Subject    string
	SubjectKey ed25519.PublicKey
	Attributes map[string]string
	Issuer     string
	Expiry     sim.Time
	Sig        []byte
}

// certBytes is the canonical byte encoding that is signed. Attribute
// order is canonicalized so signatures are stable.
func certBytes(c *Certificate) []byte {
	var out []byte
	app := func(s string) {
		out = append(out, byte(len(s)>>8), byte(len(s)))
		out = append(out, s...)
	}
	app(c.Subject)
	out = append(out, c.SubjectKey...)
	keys := make([]string, 0, len(c.Attributes))
	for k := range c.Attributes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		app(k)
		app(c.Attributes[k])
	}
	app(c.Issuer)
	e := uint64(c.Expiry)
	out = append(out, byte(e>>56), byte(e>>48), byte(e>>40), byte(e>>32),
		byte(e>>24), byte(e>>16), byte(e>>8), byte(e))
	return out
}

// Issue creates a certificate for subject signed by issuer.
func Issue(issuer *Principal, subject string, subjectKey ed25519.PublicKey, attrs map[string]string, expiry sim.Time) *Certificate {
	c := &Certificate{
		Subject:    subject,
		SubjectKey: subjectKey,
		Attributes: attrs,
		Issuer:     issuer.Name,
		Expiry:     expiry,
	}
	c.Sig = issuer.Sign(certBytes(c))
	return c
}

// Certificate verification errors.
var (
	ErrExpired    = errors.New("trust: certificate expired")
	ErrBadSig     = errors.New("trust: bad certificate signature")
	ErrNoAnchor   = errors.New("trust: no path to a trust anchor")
	ErrChainOrder = errors.New("trust: chain subject/issuer mismatch")
)

// VerifyCert checks one certificate against the issuer's known key.
func VerifyCert(c *Certificate, issuerKey ed25519.PublicKey, now sim.Time) error {
	if now > c.Expiry {
		return ErrExpired
	}
	if !ed25519.Verify(issuerKey, certBytes(c), c.Sig) {
		return ErrBadSig
	}
	return nil
}

// Anchors is a set of trusted root principals, keyed by name. Which
// anchors a party installs is itself a choice — "the parties must be
// able to choose, so they can select third parties that they trust."
type Anchors map[string]ed25519.PublicKey

// VerifyChain validates chain[0] (the leaf) through intermediates to an
// anchor. chain[i]'s issuer must be chain[i+1]'s subject; the last
// certificate's issuer must be an anchor.
func VerifyChain(chain []*Certificate, anchors Anchors, now sim.Time) error {
	if len(chain) == 0 {
		return ErrNoAnchor
	}
	for i, c := range chain {
		var issuerKey ed25519.PublicKey
		if i+1 < len(chain) {
			next := chain[i+1]
			if next.Subject != c.Issuer {
				return fmt.Errorf("%w: %q issued by %q but next cert is for %q",
					ErrChainOrder, c.Subject, c.Issuer, next.Subject)
			}
			issuerKey = next.SubjectKey
		} else {
			k, ok := anchors[c.Issuer]
			if !ok {
				return fmt.Errorf("%w: issuer %q", ErrNoAnchor, c.Issuer)
			}
			issuerKey = k
		}
		if err := VerifyCert(c, issuerKey, now); err != nil {
			return fmt.Errorf("cert %q: %w", c.Subject, err)
		}
	}
	return nil
}
