package policy

import (
	"fmt"
	"sort"
)

// Env supplies attribute values during evaluation.
type Env map[string]Value

// EvalError reports a runtime evaluation failure (unknown attribute, type
// mismatch).
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "policy: eval: " + e.Msg }

func evalErrf(format string, args ...interface{}) error {
	return &EvalError{Msg: fmt.Sprintf(format, args...)}
}

// Eval computes the value of an expression under env.
func Eval(e Expr, env Env) (Value, error) {
	switch n := e.(type) {
	case *LitExpr:
		return n.V, nil
	case *RefExpr:
		v, ok := env[n.Name]
		if !ok {
			if n.unknownErr != nil {
				return Value{}, n.unknownErr
			}
			return Value{}, evalErrf("unknown attribute %q", n.Name)
		}
		return v, nil
	case *ListExpr:
		out := make([]Value, len(n.Elems))
		for i, el := range n.Elems {
			v, err := Eval(el, env)
			if err != nil {
				return Value{}, err
			}
			out[i] = v
		}
		return List(out...), nil
	case *UnaryExpr:
		v, err := Eval(n.X, env)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindBool {
			return Value{}, evalErrf("! applied to %v", v)
		}
		return Bool(!v.B), nil
	case *BinExpr:
		return evalBin(n, env)
	}
	return Value{}, evalErrf("unknown expression node %T", e)
}

func evalBin(n *BinExpr, env Env) (Value, error) {
	// Short-circuit logic first.
	if n.Op == "&&" || n.Op == "||" {
		l, err := Eval(n.L, env)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != KindBool {
			return Value{}, evalErrf("%s applied to %v", n.Op, l)
		}
		if n.Op == "&&" && !l.B {
			return Bool(false), nil
		}
		if n.Op == "||" && l.B {
			return Bool(true), nil
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != KindBool {
			return Value{}, evalErrf("%s applied to %v", n.Op, r)
		}
		return Bool(r.B), nil
	}
	l, err := Eval(n.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := Eval(n.R, env)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case "==":
		return Bool(l.Equal(r)), nil
	case "!=":
		return Bool(!l.Equal(r)), nil
	case "in":
		if r.Kind != KindList {
			return Value{}, evalErrf("'in' needs a list on the right, got %v", r)
		}
		for _, el := range r.L {
			if l.Equal(el) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case "<", ">", "<=", ">=":
		if l.Kind == KindNumber && r.Kind == KindNumber {
			switch n.Op {
			case "<":
				return Bool(l.N < r.N), nil
			case ">":
				return Bool(l.N > r.N), nil
			case "<=":
				return Bool(l.N <= r.N), nil
			default:
				return Bool(l.N >= r.N), nil
			}
		}
		if l.Kind == KindString && r.Kind == KindString {
			switch n.Op {
			case "<":
				return Bool(l.S < r.S), nil
			case ">":
				return Bool(l.S > r.S), nil
			case "<=":
				return Bool(l.S <= r.S), nil
			default:
				return Bool(l.S >= r.S), nil
			}
		}
		return Value{}, evalErrf("%s applied to %v and %v", n.Op, l, r)
	}
	return Value{}, evalErrf("unknown operator %q", n.Op)
}

// Decision is the outcome of evaluating a document against an
// environment.
type Decision struct {
	Action Action
	// Rule names the deciding rule; empty for the default.
	Rule string
	// Default reports whether the default applied.
	Default bool
}

// Permitted is a convenience: true for Permit and Price outcomes.
func (d Decision) Permitted() bool {
	return d.Action.Kind == Permit || d.Action.Kind == Price
}

// Evaluate runs a document: rules in order, first match decides; the
// default (or Deny) otherwise. A rule whose condition errors is skipped —
// policies must fail safe, not crash the enforcement point — and the
// error is reported alongside.
func Evaluate(doc *Document, env Env) (Decision, []error) {
	var errs []error
	for _, r := range doc.Rules {
		v, err := Eval(r.When, env)
		if err != nil {
			errs = append(errs, fmt.Errorf("rule %q: %w", r.Name, err))
			continue
		}
		if v.Kind != KindBool {
			errs = append(errs, fmt.Errorf("rule %q: condition is %v, not bool", r.Name, v))
			continue
		}
		if v.B {
			return Decision{Action: r.Then, Rule: r.Name}, errs
		}
	}
	if doc.HasDefault {
		return Decision{Action: *doc.Default, Default: true}, errs
	}
	return Decision{
		Action:  Action{Kind: Deny, Reason: "no matching rule"},
		Default: true,
	}, errs
}

// Analyze checks a document against a vocabulary (the ontology the
// enforcement point understands) and returns the attributes the document
// references that fall outside it. A non-empty result is the §II-B
// failure mode made concrete: the language cannot capture this tussle.
func Analyze(doc *Document, vocab []string) []string {
	known := make(map[string]bool, len(vocab))
	for _, v := range vocab {
		known[v] = true
	}
	var out []string
	for _, a := range doc.Attributes() {
		if !known[a] {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}
