package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
)

// Tests for InjectArrival, the seam the wire engine's differential
// harness uses to replay received datagrams into the simulator. The
// contract: bytes presented at node id take exactly the decision path a
// transit arrival takes — decode, middlebox chain, then deliver /
// forward / drop — with malformed input dying as a "malformed" drop at
// the arrival node.

func TestInjectArrivalDelivers(t *testing.T) {
	n, sched := chainNet(t)
	var got []byte
	n.Node(2).Deliver = func(nd *Node, tr *Trace, data []byte) { got = data }
	tr := n.InjectArrival(2, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(2, 9), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("arrival at destination not delivered: %+v", tr)
	}
	if got == nil {
		t.Fatal("deliver handler not invoked")
	}
	if len(tr.Events) == 0 || tr.Events[0].Action != "deliver" || tr.Events[0].Node != 2 {
		t.Fatalf("first event = %+v, want deliver at node 2", tr.Events)
	}
}

func TestInjectArrivalForwards(t *testing.T) {
	n, sched := chainNet(t)
	tr := n.InjectArrival(2, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("forwarded arrival not delivered: %+v", tr)
	}
	// The arrival node's decision is the first event; the chosen next hop
	// is the node of the second (the differential harness reads both).
	if tr.Events[0].Action != "forward" || tr.Events[0].Node != 2 {
		t.Fatalf("first event = %+v, want forward at node 2", tr.Events[0])
	}
	if tr.Events[1].Node != 3 {
		t.Fatalf("second event at node %d, want next hop 3", tr.Events[1].Node)
	}
}

func TestInjectArrivalMalformed(t *testing.T) {
	n, sched := chainNet(t)
	// Truncated garbage: the decode fails before any node logic runs.
	tr := n.InjectArrival(2, []byte{0x18, 0x00, 0x00})
	sched.Run()
	if tr.Delivered || tr.DropReason != "malformed" || tr.DropNode != 2 {
		t.Fatalf("got %+v, want malformed drop at node 2", tr)
	}

	// Valid structure, corrupted checksum: also a decode failure.
	data := mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16)
	data[6] ^= 0xff
	tr = n.InjectArrival(2, data)
	sched.Run()
	if tr.Delivered || tr.DropReason != "malformed" {
		t.Fatalf("got %+v, want malformed drop", tr)
	}
}

func TestInjectArrivalTTLExpiry(t *testing.T) {
	n, sched := chainNet(t)
	// TTL 1 decrements to 0 at the transit node — the arrival is counted
	// as a forwarding hop, exactly like a wire router would treat it.
	tr := n.InjectArrival(2, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 1))
	sched.Run()
	if tr.Delivered || tr.DropReason != "ttl" || tr.DropNode != 2 {
		t.Fatalf("got %+v, want ttl drop at node 2", tr)
	}
}

func TestInjectArrivalCopiesBytes(t *testing.T) {
	n, sched := chainNet(t)
	data := mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(2, 1), 16)
	tr := n.InjectArrival(2, data)
	for i := range data {
		data[i] = 0xFF // receive slot refilled before the scheduler runs
	}
	sched.Run()
	if !tr.Delivered {
		t.Fatalf("clobbering the caller's buffer changed the outcome: %+v", tr)
	}
}

func TestInjectArrivalRunsMiddleboxes(t *testing.T) {
	n, sched := chainNet(t)
	n.Node(2).AddMiddlebox(dropAll{})
	tr := n.InjectArrival(2, mkPkt(t, packet.MakeAddr(1, 1), packet.MakeAddr(4, 1), 16))
	sched.Run()
	if tr.Delivered || tr.DropReason != "blocked:wall" {
		t.Fatalf("got %+v, want blocked:wall drop", tr)
	}
}

type dropAll struct{}

func (dropAll) Name() string { return "wall" }
func (dropAll) Process(topology.NodeID, Direction, []byte) ([]byte, Verdict) {
	return nil, Drop
}
func (dropAll) Silent() bool { return false }
