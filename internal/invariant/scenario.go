package invariant

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Traffic is one generated datagram: a raw packet of Size payload bytes
// injected at Src toward Dst at AtMs milliseconds of simulated time.
type Traffic struct {
	AtMs float64         `json:"at_ms"`
	Src  topology.NodeID `json:"src"`
	Dst  topology.NodeID `json:"dst"`
	Size int             `json:"size"`
}

// TransferSpec is an optional reliable transfer riding the scenario: a
// transport-layer stream from Src to Dst, exercising retransmission and
// give-up behavior under the fault plan.
type TransferSpec struct {
	Src   topology.NodeID `json:"src"`
	Dst   topology.NodeID `json:"dst"`
	Bytes int             `json:"bytes"`
	// Multipath, when ≥ 2, runs the transfer over the multipath sender
	// with that many requested paths (strategy derived deterministically
	// from the value); 0 keeps the single-path transport. omitempty
	// keeps old reproducers parseable.
	Multipath int `json:"multipath,omitempty"`
}

// Scenario is one fully-specified property-based trial: a topology (by
// generation seed and parameters), a traffic matrix, an optional
// transfer, and a chaos fault plan with a restoration tail. Everything
// is derived from Seed by Generate, but the struct carries the expansion
// explicitly so a shrunk scenario (whose plan and traffic no longer
// match the seed) stays replayable and serializable as the reproducer.
type Scenario struct {
	Seed uint64 `json:"seed"`

	// Topology generation parameters; Graph() re-derives the graph.
	TopoSeed      uint64  `json:"topo_seed"`
	Tier1         int     `json:"tier1"`
	Tier2         int     `json:"tier2"`
	Stubs         int     `json:"stubs"`
	MultihomeProb float64 `json:"multihome_prob"`
	PeerProb      float64 `json:"peer_prob"`

	Traffic  []Traffic     `json:"traffic"`
	Transfer *TransferSpec `json:"transfer,omitempty"`
	Plan     *chaos.Plan   `json:"plan"`

	// ProbeAtMs is when heal-reachability probes are injected: after the
	// plan's restoration tail plus a reconvergence margin.
	ProbeAtMs float64 `json:"probe_at_ms"`
}

// Generation envelope: faults land in [faultFromMs, faultToMs], traffic
// in [0, faultToMs+20], the restoration tail starts at restoreStartMs
// (after the longest possible flap sequence has finished toggling), and
// probes go out probeMarginMs after the last plan event.
const (
	faultFromMs    = 5.0
	faultToMs      = 95.0
	restoreStartMs = 140.0
	probeMarginMs  = 20.0
)

// Graph re-derives the scenario's topology. Deterministic: the same
// TopoSeed and parameters always yield the identical graph.
func (sc *Scenario) Graph() *topology.Graph {
	cfg := topology.HierarchyConfig{
		Tier1:         sc.Tier1,
		Tier2:         sc.Tier2,
		Stubs:         sc.Stubs,
		MultihomeProb: sc.MultihomeProb,
		PeerProb:      sc.PeerProb,
		BaseLatency:   5 * sim.Millisecond,
	}
	return topology.GenerateHierarchy(cfg, sim.NewRNG(sc.TopoSeed))
}

// Validate checks a scenario (typically a parsed reproducer) for
// structural sanity: generation parameters in range, traffic endpoints
// and plan references resolvable against the derived topology.
func (sc *Scenario) Validate() error {
	if sc.Tier1 < 1 || sc.Tier1 > 8 || sc.Tier2 < 0 || sc.Tier2 > 32 || sc.Stubs < 0 || sc.Stubs > 64 {
		return fmt.Errorf("invariant: topology parameters out of range (tier1=%d tier2=%d stubs=%d)", sc.Tier1, sc.Tier2, sc.Stubs)
	}
	if sc.Plan == nil {
		return fmt.Errorf("invariant: scenario has no plan")
	}
	if err := sc.Plan.Validate(); err != nil {
		return err
	}
	g := sc.Graph()
	for i, tr := range sc.Traffic {
		if _, ok := g.Nodes[tr.Src]; !ok {
			return fmt.Errorf("invariant: traffic %d src %d not in topology", i, tr.Src)
		}
		if _, ok := g.Nodes[tr.Dst]; !ok {
			return fmt.Errorf("invariant: traffic %d dst %d not in topology", i, tr.Dst)
		}
		if tr.Size < 0 || tr.Size > 1<<16 {
			return fmt.Errorf("invariant: traffic %d size %d out of range", i, tr.Size)
		}
		if tr.AtMs < 0 {
			return fmt.Errorf("invariant: traffic %d at_ms %v negative", i, tr.AtMs)
		}
	}
	if sc.Transfer != nil {
		if _, ok := g.Nodes[sc.Transfer.Src]; !ok {
			return fmt.Errorf("invariant: transfer src %d not in topology", sc.Transfer.Src)
		}
		if _, ok := g.Nodes[sc.Transfer.Dst]; !ok {
			return fmt.Errorf("invariant: transfer dst %d not in topology", sc.Transfer.Dst)
		}
		if sc.Transfer.Bytes < 1 || sc.Transfer.Bytes > 1<<20 {
			return fmt.Errorf("invariant: transfer bytes %d out of range", sc.Transfer.Bytes)
		}
		if mp := sc.Transfer.Multipath; mp != 0 && (mp < 2 || mp > 8) {
			return fmt.Errorf("invariant: transfer multipath %d out of range", mp)
		}
	}
	return nil
}

// Generate expands a seed into a full scenario: a random three-tier
// topology, 20–80 datagrams between random stubs, an optional reliable
// transfer, and a 2–12 event fault plan drawn from the real topology —
// followed by a restoration tail (heals, link-ups, recoveries,
// impairment clears) that returns the network to full health before the
// reachability probes fire. Pure function of the seed.
func Generate(seed uint64) *Scenario {
	rng := sim.NewRNG(seed ^ 0x1a4a17)
	sc := &Scenario{
		Seed:          seed,
		Tier1:         1 + rng.Intn(3),
		Tier2:         2 + rng.Intn(4),
		Stubs:         4 + rng.Intn(8),
		MultihomeProb: rng.Range(0.3, 0.8),
		PeerProb:      rng.Range(0.1, 0.5),
		TopoSeed:      rng.Uint64(),
	}
	g := sc.Graph()
	ids := g.NodeIDs()
	links := g.Links

	pickLink := func() topology.Link { return links[rng.Intn(len(links))] }
	pickNode := func() topology.NodeID { return ids[rng.Intn(len(ids))] }

	plan := &chaos.Plan{Name: fmt.Sprintf("sweep-%d", seed), Seed: rng.Uint64()}
	// Track what the plan breaks so the restoration tail can undo all of
	// it: flapped links may end in either phase, so they get a link-up
	// unconditionally.
	brokenLinks := map[[2]topology.NodeID]bool{}
	crashed := map[topology.NodeID]bool{}
	impaired := map[[2]topology.NodeID]bool{}
	partitions := 0

	linkKey := func(a, b topology.NodeID) [2]topology.NodeID {
		if a > b {
			a, b = b, a
		}
		return [2]topology.NodeID{a, b}
	}

	nev := 2 + rng.Intn(11)
	kindWeights := []float64{3, 1, 2, 2, 1, 2, 1, 2, 1, 1}
	kinds := []chaos.Kind{
		chaos.LinkDown, chaos.LinkUp, chaos.LinkFlap,
		chaos.NodeCrash, chaos.NodeRecover,
		chaos.Partition, chaos.Heal,
		chaos.Impair, chaos.ClearImpair,
		chaos.ByzantineBurst,
	}
	for i := 0; i < nev; i++ {
		ev := chaos.Event{AtMs: rng.Range(faultFromMs, faultToMs)}
		ev.Kind = kinds[rng.Pick(kindWeights)]
		switch ev.Kind {
		case chaos.LinkDown, chaos.LinkUp:
			l := pickLink()
			ev.A, ev.B = l.A, l.B
			if ev.Kind == chaos.LinkDown {
				brokenLinks[linkKey(l.A, l.B)] = true
			}
		case chaos.LinkFlap:
			l := pickLink()
			ev.A, ev.B = l.A, l.B
			ev.PeriodMs = rng.Range(1, 5)
			ev.Count = 2 + rng.Intn(4)
			brokenLinks[linkKey(l.A, l.B)] = true
		case chaos.NodeCrash:
			ev.Node = pickNode()
			crashed[ev.Node] = true
		case chaos.NodeRecover:
			ev.Node = pickNode()
		case chaos.Partition:
			k := 1 + rng.Intn(1+len(ids)/3)
			perm := rng.Perm(len(ids))
			for _, p := range perm[:k] {
				ev.Group = append(ev.Group, ids[p])
			}
			partitions++
		case chaos.Heal:
			// no fields
		case chaos.Impair:
			l := pickLink()
			ev.A, ev.B = l.A, l.B
			ev.Corrupt = rng.Range(0.05, 0.35)
			if rng.Bool(0.5) {
				ev.Duplicate = rng.Range(0.05, 0.25)
			}
			if rng.Bool(0.3) {
				ev.ReorderProb = rng.Range(0.05, 0.25)
				ev.ReorderJitterMs = rng.Range(1, 5)
			}
			impaired[linkKey(l.A, l.B)] = true
		case chaos.ClearImpair:
			l := pickLink()
			ev.A, ev.B = l.A, l.B
		case chaos.ByzantineBurst:
			ev.Node = pickNode()
			ev.Count = 1 + rng.Intn(3)
			ev.Cost = rng.Range(0.01, 0.5)
			if rng.Bool(0.5) {
				for {
					p := pickNode()
					if p != ev.Node {
						ev.Phantoms = []topology.NodeID{p}
						break
					}
				}
			}
		}
		plan.Events = append(plan.Events, ev)
	}

	// Restoration tail: undo every partition (heals nest like a stack),
	// then every broken link, crashed node, and lingering impairment, so
	// ground truth is fully healed before probes. Iteration over the
	// bookkeeping maps goes through the deterministic orderings below.
	tail := restoreStartMs
	for i := 0; i < partitions; i++ {
		plan.Events = append(plan.Events, chaos.Event{AtMs: tail, Kind: chaos.Heal})
		tail++
	}
	for _, l := range links {
		if brokenLinks[linkKey(l.A, l.B)] {
			plan.Events = append(plan.Events, chaos.Event{AtMs: tail, Kind: chaos.LinkUp, A: l.A, B: l.B})
			tail++
		}
	}
	for _, id := range ids {
		if crashed[id] {
			plan.Events = append(plan.Events, chaos.Event{AtMs: tail, Kind: chaos.NodeRecover, Node: id})
			tail++
		}
	}
	for _, l := range links {
		if impaired[linkKey(l.A, l.B)] {
			plan.Events = append(plan.Events, chaos.Event{AtMs: tail, Kind: chaos.ClearImpair, A: l.A, B: l.B})
			tail++
		}
	}
	sc.Plan = plan
	sc.ProbeAtMs = tail + probeMarginMs

	// Traffic matrix: datagrams between random distinct stubs (any two
	// distinct nodes if the topology is too small), overlapping the fault
	// window and spilling slightly past it.
	endpoints := g.Stubs()
	if len(endpoints) < 2 {
		endpoints = ids
	}
	ntr := 20 + rng.Intn(61)
	for i := 0; i < ntr; i++ {
		src := endpoints[rng.Intn(len(endpoints))]
		dst := endpoints[rng.Intn(len(endpoints))]
		for dst == src {
			dst = endpoints[rng.Intn(len(endpoints))]
		}
		sc.Traffic = append(sc.Traffic, Traffic{
			AtMs: rng.Range(0, faultToMs+20),
			Src:  src,
			Dst:  dst,
			Size: 64 + rng.Intn(1200),
		})
	}

	if rng.Bool(0.3) && len(endpoints) >= 2 {
		src := endpoints[rng.Intn(len(endpoints))]
		dst := endpoints[rng.Intn(len(endpoints))]
		for dst == src {
			dst = endpoints[rng.Intn(len(endpoints))]
		}
		sc.Transfer = &TransferSpec{Src: src, Dst: dst, Bytes: 1024 + rng.Intn(4096)}
	}
	// Drawn after everything else so scenarios generated by older seeds
	// are unchanged: some transfers ride the multipath sender, cycling
	// through its strategies (value mod strategy count picks one).
	if sc.Transfer != nil && rng.Bool(0.35) {
		sc.Transfer.Multipath = 2 + rng.Intn(4)
	}
	return sc
}
