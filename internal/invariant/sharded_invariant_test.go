package invariant

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/scale"
)

// TestSweepShardedClean: the sharded core holds the event-stream
// invariants (conservation, queue-bound, clock) and per-packet trace
// validity with the checker attached across shards, under chaos, at
// several shard counts.
func TestSweepShardedClean(t *testing.T) {
	res := SweepSharded(Config{Trials: 24, Seed: 42}, 0)
	if !res.Clean() {
		for _, f := range res.Failures {
			for _, v := range f.Violations {
				t.Errorf("trial %d seed %d: %s", f.Trial, f.Seed, v)
			}
		}
	}
	if res.Trials != 24 {
		t.Fatalf("trials = %d", res.Trials)
	}
}

// TestShardedCheckerSeesTraffic guards against the sweep silently
// checking nothing: a checker attached across shards must actually
// observe the bulk traffic on every shard.
func TestShardedCheckerSeesTraffic(t *testing.T) {
	sm := scale.Prepare(scale.Config{Nodes: 200, Packets: 1000, Seed: 42, Shards: 4})
	c := NewChecker(sm.S.Shards[0].Net, ShardedInvariants())
	sm.AttachSink(c)
	traces := sm.SendProbes(8)
	res := sm.Run()
	if c.sends < 1000 {
		t.Fatalf("checker saw %d sends, want >= 1000", c.sends)
	}
	if c.delivers+c.drops != c.sends+c.dups {
		t.Fatalf("checker counts unbalanced: sends=%d dups=%d delivers=%d drops=%d",
			c.sends, c.dups, c.delivers, c.drops)
	}
	delivered := 0
	for _, tr := range traces {
		c.CheckTrace(tr, 64)
		if tr.Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("no probe delivered on a fault-free run")
	}
	c.Finish()
	if vs := c.Violations(); len(vs) != 0 {
		t.Fatalf("violations on clean run: %v", vs)
	}
	if res.Delivered+res.Dropped != 1000+len(traces) {
		t.Fatalf("result counts %d+%d don't cover traffic+probes", res.Delivered, res.Dropped)
	}
}

// TestShardedCheckerDetectsViolation: the cross-shard checker is live —
// a fabricated non-monotone event stream trips the clock invariant.
func TestShardedCheckerDetectsViolation(t *testing.T) {
	sm := scale.Prepare(scale.Config{Nodes: 150, Packets: 500, Seed: 7, Shards: 2})
	c := NewChecker(sm.S.Shards[0].Net, ShardedInvariants())
	sm.AttachSink(c)
	sm.Run()
	// Replay a stale-timestamped event into the sink by hand.
	c.Emit(obs.Event{Time: 1, Scope: "netsim", Kind: "deliver", Node: 1})
	found := false
	for _, v := range c.Violations() {
		if v.Invariant == Clock && strings.Contains(v.Detail, "before previous event") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale event not flagged; violations: %v", c.Violations())
	}
}
