package packet

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func mustSerialize(t *testing.T, layers ...SerializableLayer) []byte {
	t.Helper()
	data, err := Serialize(layers...)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	return data
}

func TestAddr(t *testing.T) {
	a := MakeAddr(12, 34)
	if a.Provider() != 12 || a.Host() != 34 {
		t.Fatalf("addr fields: %d.%d", a.Provider(), a.Host())
	}
	if a.String() != "12.34" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestAddrRoundTripQuick(t *testing.T) {
	f := func(p, h uint16) bool {
		a := MakeAddr(p, h)
		return a.Provider() == p && a.Host() == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumZeroOverSelf(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		b := make([]byte, len(data))
		copy(b, data)
		// Zero a checksum field, compute, insert, and verify the
		// whole-buffer checksum is zero (even-length buffers only —
		// the standard internet checksum property).
		if len(b)%2 == 1 {
			b = b[:len(b)-1]
		}
		if len(b) < 2 {
			return true
		}
		b[0], b[1] = 0, 0
		ck := Checksum(b)
		b[0], b[1] = byte(ck>>8), byte(ck)
		return Checksum(b) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTIPRoundTripMinimal(t *testing.T) {
	tip := &TIP{TOS: 5, TTL: 64, Proto: LayerTypeRaw, Src: MakeAddr(1, 2), Dst: MakeAddr(3, 4)}
	raw := &Raw{Data: []byte("hello tussle")}
	data := mustSerialize(t, tip, raw)

	p := NewPacket(data, LayerTypeTIP)
	if fail := p.ErrorLayer(); fail != nil {
		t.Fatalf("decode failed: %v", fail.Err)
	}
	got := p.Layer(LayerTypeTIP).(*TIP)
	if got.TOS != 5 || got.TTL != 64 || got.Src != tip.Src || got.Dst != tip.Dst {
		t.Fatalf("TIP fields mismatch: %+v", got)
	}
	gotRaw := p.Layer(LayerTypeRaw).(*Raw)
	if string(gotRaw.Data) != "hello tussle" {
		t.Fatalf("payload = %q", gotRaw.Data)
	}
	if p.String() != "TIP/Raw" {
		t.Fatalf("chain = %q", p.String())
	}
}

func TestTIPRoundTripOptions(t *testing.T) {
	tip := &TIP{
		TOS: 1, TTL: 9, Proto: LayerTypeTTP,
		Src: MakeAddr(10, 1), Dst: MakeAddr(20, 2),
		SourceRoute: &SourceRouteOption{Ptr: 1, Hops: []Addr{MakeAddr(30, 0), MakeAddr(40, 0), MakeAddr(20, 0)}},
		Payment:     &PaymentOption{Payer: MakeAddr(10, 1), Payee: MakeAddr(30, 0), AmountMilli: 1500, Nonce: 7, MAC: 0xdeadbeefcafef00d},
		Identity:    &IdentityOption{Scheme: IdentityCertified, ID: []byte("alice")},
	}
	ttp := &TTP{SrcPort: 1000, DstPort: 80, Seq: 42, Next: LayerTypeRaw}
	raw := &Raw{Data: []byte("GET /")}
	data := mustSerialize(t, tip, ttp, raw)

	p := NewPacket(data, LayerTypeTIP)
	if fail := p.ErrorLayer(); fail != nil {
		t.Fatalf("decode failed: %v", fail.Err)
	}
	got := p.Layer(LayerTypeTIP).(*TIP)
	if got.SourceRoute == nil || got.Payment == nil || got.Identity == nil {
		t.Fatalf("options missing: %+v", got)
	}
	if got.SourceRoute.Ptr != 1 || len(got.SourceRoute.Hops) != 3 || got.SourceRoute.Hops[2] != MakeAddr(20, 0) {
		t.Fatalf("source route mismatch: %+v", got.SourceRoute)
	}
	if *got.Payment != *tip.Payment {
		t.Fatalf("payment mismatch: %+v vs %+v", got.Payment, tip.Payment)
	}
	if got.Identity.Scheme != IdentityCertified || string(got.Identity.ID) != "alice" {
		t.Fatalf("identity mismatch: %+v", got.Identity)
	}
	gt := p.Layer(LayerTypeTTP).(*TTP)
	if gt.SrcPort != 1000 || gt.DstPort != 80 || gt.Seq != 42 {
		t.Fatalf("TTP mismatch: %+v", gt)
	}
}

func TestTIPRoundTripQuick(t *testing.T) {
	f := func(tos, ttl uint8, src, dst uint32, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		tip := &TIP{TOS: tos, TTL: ttl, Proto: LayerTypeRaw, Src: Addr(src), Dst: Addr(dst)}
		data, err := Serialize(tip, &Raw{Data: payload})
		if err != nil {
			return false
		}
		p := NewPacket(data, LayerTypeTIP)
		if p.ErrorLayer() != nil {
			return false
		}
		got := p.Layer(LayerTypeTIP).(*TIP)
		rawLayer := p.Layer(LayerTypeRaw)
		if rawLayer == nil {
			// Zero-length payloads produce no Raw layer; acceptable.
			return len(payload) == 0 &&
				got.TOS == tos && got.TTL == ttl
		}
		return got.TOS == tos && got.TTL == ttl &&
			got.Src == Addr(src) && got.Dst == Addr(dst) &&
			bytes.Equal(rawLayer.(*Raw).Data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTIPChecksumDetectsCorruption(t *testing.T) {
	tip := &TIP{TTL: 3, Proto: LayerTypeRaw, Src: 1, Dst: 2}
	data := mustSerialize(t, tip, &Raw{Data: []byte("x")})
	for i := 0; i < tipMinHeader; i++ {
		corrupt := make([]byte, len(data))
		copy(corrupt, data)
		corrupt[i] ^= 0x10
		p := NewPacket(corrupt, LayerTypeTIP)
		if p.ErrorLayer() == nil {
			t.Fatalf("corruption at header byte %d not detected", i)
		}
	}
}

func TestTIPRejectsTruncated(t *testing.T) {
	tip := &TIP{TTL: 3, Proto: LayerTypeRaw, Src: 1, Dst: 2}
	data := mustSerialize(t, tip, &Raw{Data: []byte("abcdef")})
	for n := 0; n < len(data); n++ {
		p := NewPacket(data[:n], LayerTypeTIP)
		if n == 0 {
			// Nothing to decode: zero layers, no failure.
			continue
		}
		if p.ErrorLayer() == nil && n < len(data) {
			// A shorter-but-valid prefix would mean total-length is
			// not enforced.
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestTIPDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var tip TIP
		_ = tip.DecodeFrom(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTIPSourceRouteTooLong(t *testing.T) {
	hops := make([]Addr, 11)
	tip := &TIP{Proto: LayerTypeRaw, SourceRoute: &SourceRouteOption{Hops: hops}}
	if _, err := Serialize(tip, &Raw{Data: []byte("x")}); err == nil {
		t.Fatal("11-hop source route accepted")
	}
}

func TestSourceRouteNext(t *testing.T) {
	sr := &SourceRouteOption{Hops: []Addr{1, 2, 3}}
	var got []Addr
	for !sr.Exhausted() {
		got = append(got, sr.Next())
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Next sequence = %v", got)
	}
	if sr.Next() != AddrNone {
		t.Fatal("exhausted Next should return AddrNone")
	}
}

func TestTTPRoundTripQuick(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		ttp := &TTP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Next: LayerTypeRaw, Window: win}
		data, err := Serialize(ttp, &Raw{Data: payload})
		if err != nil {
			return false
		}
		var got TTP
		if err := got.DecodeFrom(data); err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && got.Flags == flags && got.Window == win &&
			bytes.Equal(got.LayerPayload(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTunnelHidesInnerFromOuterClassifier(t *testing.T) {
	// Inner packet: the "forbidden" server traffic on port 80.
	inner := mustSerialize(t,
		&TIP{TTL: 5, Proto: LayerTypeTTP, Src: MakeAddr(1, 1), Dst: MakeAddr(2, 2)},
		&TTP{SrcPort: 80, DstPort: 5000, Next: LayerTypeRaw},
		&Raw{Data: []byte("response")})
	// Outer packet: innocuous-looking tunnel on an allowed port.
	outer := mustSerialize(t,
		&TIP{TTL: 5, Proto: LayerTypeTTP, Src: MakeAddr(1, 1), Dst: MakeAddr(3, 3)},
		&TTP{SrcPort: 7777, DstPort: 443, Next: LayerTypeTunnel},
		&Tunnel{Inner: LayerTypeTIP, ID: 9},
		&Raw{Data: inner})

	p := NewPacket(outer, LayerTypeTIP)
	if fail := p.ErrorLayer(); fail != nil {
		t.Fatalf("decode failed: %v", fail.Err)
	}
	// The outer classifier sees port 443.
	outerTTP := p.Layer(LayerTypeTTP).(*TTP)
	if outerTTP.DstPort != 443 {
		t.Fatalf("outer port = %d", outerTTP.DstPort)
	}
	// Full decode reveals the tunnel and, inside it, the inner packet.
	tun := p.Layer(LayerTypeTunnel)
	if tun == nil {
		t.Fatal("tunnel layer missing")
	}
	innerPkt := NewPacket(tun.LayerPayload(), LayerTypeTIP)
	innerTTP := innerPkt.Layer(LayerTypeTTP)
	if innerTTP == nil || innerTTP.(*TTP).SrcPort != 80 {
		t.Fatalf("inner packet not recovered: %v", innerPkt)
	}
}

func TestPolicyLayerRoundTrip(t *testing.T) {
	pol := &Policy{Inner: LayerTypeRaw, Expression: `allow if role == "subscriber"`}
	data := mustSerialize(t, pol, &Raw{Data: []byte("body")})
	var got Policy
	if err := got.DecodeFrom(data); err != nil {
		t.Fatal(err)
	}
	if got.Expression != pol.Expression || got.Inner != LayerTypeRaw {
		t.Fatalf("policy mismatch: %+v", got)
	}
	if string(got.LayerPayload()) != "body" {
		t.Fatalf("payload = %q", got.LayerPayload())
	}
}

func TestPolicyRoundTripQuick(t *testing.T) {
	f := func(expr string, body []byte) bool {
		if len(expr) > 1000 {
			expr = expr[:1000]
		}
		pol := &Policy{Inner: LayerTypeRaw, Expression: expr}
		data, err := Serialize(pol, &Raw{Data: body})
		if err != nil {
			return false
		}
		var got Policy
		if err := got.DecodeFrom(data); err != nil {
			return false
		}
		return got.Expression == expr && bytes.Equal(got.LayerPayload(), body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCryptoSealOpen(t *testing.T) {
	key := []byte("shared secret key")
	plain := []byte("private conversation the government wants to tap")
	c := &Crypto{KeyID: 1, Nonce: 99}
	c.Seal(key, plain, LayerTypeRaw)

	got, err := c.Open(key)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("roundtrip = %q", got)
	}
}

func TestCryptoOpenWrongKey(t *testing.T) {
	c := &Crypto{Nonce: 5}
	c.Seal([]byte("right"), []byte("data"), LayerTypeRaw)
	if _, err := c.Open([]byte("wrong")); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong key error = %v, want ErrAuth", err)
	}
}

func TestCryptoTamperDetected(t *testing.T) {
	key := []byte("k")
	c := &Crypto{Nonce: 5}
	c.Seal(key, []byte("ledger: pay alice 10"), LayerTypeRaw)
	c.Ciphertext[3] ^= 1
	if _, err := c.Open(key); !errors.Is(err, ErrAuth) {
		t.Fatalf("tamper error = %v, want ErrAuth", err)
	}
}

func TestCryptoRoundTripQuick(t *testing.T) {
	f := func(key []byte, nonce uint64, plain []byte) bool {
		if len(key) == 0 {
			key = []byte{0}
		}
		c := &Crypto{Nonce: nonce}
		c.Seal(key, plain, LayerTypeRaw)
		got, err := c.Open(key)
		return err == nil && bytes.Equal(got, plain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCryptoOpaqueVsInspectableOnWire(t *testing.T) {
	key := []byte("k")
	mk := func(flags uint8) []byte {
		c := &Crypto{Flags: flags, KeyID: 2, Nonce: 1}
		c.Seal(key, []byte("payload"), LayerTypeTTP)
		data, err := Serialize(c)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	opaque := mk(0)
	inspectable := mk(CryptoInspectable)

	var co, ci Crypto
	if err := co.DecodeFrom(opaque); err != nil {
		t.Fatal(err)
	}
	if err := ci.DecodeFrom(inspectable); err != nil {
		t.Fatal(err)
	}
	if _, err := co.InnerType(); !errors.Is(err, ErrNotInspectable) {
		t.Fatalf("opaque InnerType err = %v", err)
	}
	if it, err := ci.InnerType(); err != nil || it != LayerTypeTTP {
		t.Fatalf("inspectable InnerType = %v, %v", it, err)
	}
	// The opaque wire form must not leak the inner type byte.
	if opaque[1] != 0 {
		t.Fatal("opaque layer leaked inner type on the wire")
	}
}

func TestParserDecodeLayers(t *testing.T) {
	data := mustSerialize(t,
		&TIP{TTL: 4, Proto: LayerTypeTTP, Src: 1, Dst: 2},
		&TTP{SrcPort: 9, DstPort: 10, Next: LayerTypeRaw},
		&Raw{Data: []byte("x")})

	var tip TIP
	var ttp TTP
	var raw Raw
	parser := NewParser(LayerTypeTIP, &tip, &ttp, &raw)
	var decoded []LayerType
	if err := parser.DecodeLayers(data, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeTIP, LayerTypeTTP, LayerTypeRaw}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v", decoded)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}
	if ttp.SrcPort != 9 || string(raw.Data) != "x" {
		t.Fatal("parser did not fill layers")
	}
}

func TestParserUnsupportedLayer(t *testing.T) {
	data := mustSerialize(t,
		&TIP{TTL: 4, Proto: LayerTypeTunnel, Src: 1, Dst: 2},
		&Tunnel{Inner: LayerTypeRaw},
		&Raw{Data: []byte("x")})
	var tip TIP
	parser := NewParser(LayerTypeTIP, &tip)
	var decoded []LayerType
	err := parser.DecodeLayers(data, &decoded)
	if !errors.Is(err, ErrUnsupportedLayer) {
		t.Fatalf("err = %v", err)
	}
	if !parser.Truncated || len(decoded) != 1 || decoded[0] != LayerTypeTIP {
		t.Fatalf("prefix not preserved: truncated=%v decoded=%v", parser.Truncated, decoded)
	}
}

func TestParserReuseNoAlloc(t *testing.T) {
	data := mustSerialize(t,
		&TIP{TTL: 4, Proto: LayerTypeTTP, Src: 1, Dst: 2},
		&TTP{Next: LayerTypeRaw},
		&Raw{Data: []byte("abc")})
	var tip TIP
	var ttp TTP
	var raw Raw
	parser := NewParser(LayerTypeTIP, &tip, &ttp, &raw)
	decoded := make([]LayerType, 0, 4)
	allocs := testing.AllocsPerRun(200, func() {
		if err := parser.DecodeLayers(data, &decoded); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("parser allocates %v per decode, want 0", allocs)
	}
}

func TestNewPacketUnknownFirstLayer(t *testing.T) {
	p := NewPacket([]byte{1, 2, 3}, LayerType(200))
	if p.ErrorLayer() == nil {
		t.Fatal("unknown layer type should produce DecodeFailure")
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := &SerializeBuffer{} // zero value usable
	big := b.Prepend(1000)
	for i := range big {
		big[i] = byte(i)
	}
	head := b.Prepend(4)
	copy(head, []byte{9, 9, 9, 9})
	out := b.Bytes()
	if len(out) != 1004 || out[0] != 9 || out[4] != 0 || out[1003] != byte(999%256) {
		t.Fatalf("buffer layout wrong: len=%d", len(out))
	}
}

func TestSerializeBufferAppend(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.Prepend(3), "abc")
	copy(b.Append(3), "xyz")
	if string(b.Bytes()) != "abcxyz" {
		t.Fatalf("Bytes = %q", b.Bytes())
	}
}

func TestRegisterLayerTypeDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	RegisterLayerType(LayerTypeTIP, "dup", nil)
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeTIP.String() != "TIP" {
		t.Fatalf("TIP name = %q", LayerTypeTIP.String())
	}
	if LayerType(123).String() != "LayerType(123)" {
		t.Fatalf("unknown name = %q", LayerType(123).String())
	}
}

func BenchmarkSerializeTIPTTP(b *testing.B) {
	buf := NewSerializeBuffer()
	tip := &TIP{TTL: 64, Proto: LayerTypeTTP, Src: 1, Dst: 2}
	ttp := &TTP{SrcPort: 1, DstPort: 2, Next: LayerTypeRaw}
	raw := &Raw{Data: make([]byte, 512)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SerializeLayers(buf, tip, ttp, raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParserDecode(b *testing.B) {
	data, err := Serialize(
		&TIP{TTL: 64, Proto: LayerTypeTTP, Src: 1, Dst: 2},
		&TTP{Next: LayerTypeRaw},
		&Raw{Data: make([]byte, 512)})
	if err != nil {
		b.Fatal(err)
	}
	var tip TIP
	var ttp TTP
	var raw Raw
	parser := NewParser(LayerTypeTIP, &tip, &ttp, &raw)
	decoded := make([]LayerType, 0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := parser.DecodeLayers(data, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewPacket(b *testing.B) {
	data, err := Serialize(
		&TIP{TTL: 64, Proto: LayerTypeTTP, Src: 1, Dst: 2},
		&TTP{Next: LayerTypeRaw},
		&Raw{Data: make([]byte, 512)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewPacket(data, LayerTypeTIP)
		if p.ErrorLayer() != nil {
			b.Fatal("decode failed")
		}
	}
}

func TestDecodeReuseMatchesDecodeFrom(t *testing.T) {
	withOpts, err := Serialize(
		&TIP{TTL: 9, Proto: LayerTypeRaw, Src: MakeAddr(1, 1), Dst: MakeAddr(9, 2),
			SourceRoute: &SourceRouteOption{Ptr: 1, Hops: []Addr{MakeAddr(3, 0), MakeAddr(5, 0)}},
			Payment:     &PaymentOption{Payer: MakeAddr(1, 1), Payee: MakeAddr(3, 0), AmountMilli: 250, Nonce: 7, MAC: 99},
			Identity:    &IdentityOption{Scheme: IdentityPseudonym, ID: []byte("alice")}},
		&Raw{Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Serialize(
		&TIP{TTL: 4, Proto: LayerTypeRaw, Src: MakeAddr(2, 1), Dst: MakeAddr(7, 2)},
		&Raw{Data: []byte("bye")})
	if err != nil {
		t.Fatal(err)
	}

	var fresh, reused TIP
	if err := fresh.DecodeFrom(withOpts); err != nil {
		t.Fatal(err)
	}
	if err := reused.DecodeReuse(withOpts); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("DecodeReuse diverged from DecodeFrom:\n%+v\nvs\n%+v", fresh, reused)
	}
	// Re-decoding a packet without options must clear the option fields.
	if err := reused.DecodeReuse(plain); err != nil {
		t.Fatal(err)
	}
	if reused.SourceRoute != nil || reused.Payment != nil || reused.Identity != nil {
		t.Fatalf("stale options survived re-decode: %+v", reused)
	}
}

func TestDecodeReuseRecyclesOptionStructs(t *testing.T) {
	data, err := Serialize(
		&TIP{TTL: 9, Proto: LayerTypeRaw, Src: MakeAddr(1, 1), Dst: MakeAddr(9, 2),
			SourceRoute: &SourceRouteOption{Hops: []Addr{MakeAddr(3, 0)}},
			Payment:     &PaymentOption{Payer: MakeAddr(1, 1), AmountMilli: 5},
			Identity:    &IdentityOption{Scheme: IdentityCertified, ID: []byte("bob")}},
		&Raw{Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	var tip TIP
	if err := tip.DecodeReuse(data); err != nil {
		t.Fatal(err)
	}
	sr, pay, id := tip.SourceRoute, tip.Payment, tip.Identity
	allocs := testing.AllocsPerRun(100, func() {
		if err := tip.DecodeReuse(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeReuse allocated %.1f/op, want 0", allocs)
	}
	if tip.SourceRoute != sr || tip.Payment != pay || tip.Identity != id {
		t.Fatal("DecodeReuse did not recycle the option structs")
	}
}
