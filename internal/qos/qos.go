// Package qos implements the differentiated-services plane of the
// simulated internetwork: service classes, two classifier designs, and
// link schedulers (FIFO, strict priority, weighted fair queueing).
//
// The two classifiers embody the §IV-A design comparison. The explicit
// classifier reads the TIP type-of-service bits — the tussle-isolated
// design, where "what service is desired" is disentangled from "what
// application is running". The port-inference classifier guesses the
// class from well-known transport ports — the entangled design that
// creates "demands that encryption be avoided simply to leave well-known
// port information visible".
package qos

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Class is a differentiated service class; higher is better treatment.
type Class uint8

// Service classes.
const (
	BestEffort Class = 0
	Bronze     Class = 1
	Silver     Class = 2
	Gold       Class = 3
)

func (c Class) String() string {
	switch c {
	case BestEffort:
		return "best-effort"
	case Bronze:
		return "bronze"
	case Silver:
		return "silver"
	default:
		return "gold"
	}
}

// NumClasses is the number of service classes.
const NumClasses = 4

// ToSFor encodes a class into TIP type-of-service bits.
func ToSFor(c Class) uint8 { return uint8(c) }

// ClassOfToS decodes the service class from ToS bits.
func ClassOfToS(tos uint8) Class {
	c := Class(tos & 0x03)
	return c
}

// Classifier assigns a service class to a serialized packet.
type Classifier interface {
	Classify(data []byte) Class
	// Opaque reports whether the last classification fell back to a
	// default because the classifier could not see what it needed.
	Opaque() bool
}

// ExplicitClassifier reads the ToS bits: the user's declared choice,
// visible regardless of encryption or tunneling.
type ExplicitClassifier struct{ opaque bool }

// Classify implements Classifier.
func (e *ExplicitClassifier) Classify(data []byte) Class {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		e.opaque = true
		return BestEffort
	}
	e.opaque = false
	return ClassOfToS(tip.TOS)
}

// Opaque implements Classifier.
func (e *ExplicitClassifier) Opaque() bool { return e.opaque }

// PortClassifier infers the class from the destination port — the
// entangled design. Encrypted or tunneled transport defeats it.
type PortClassifier struct {
	// PortClass maps well-known ports to classes.
	PortClass map[uint16]Class
	// Default applies when the port is unknown or invisible.
	Default Class

	opaque bool
}

// Classify implements Classifier.
func (p *PortClassifier) Classify(data []byte) Class {
	p.opaque = false
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil {
		p.opaque = true
		return p.Default
	}
	if tip.Proto != packet.LayerTypeTTP {
		// Crypto or tunnel at the network layer: ports invisible.
		p.opaque = true
		return p.Default
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
		p.opaque = true
		return p.Default
	}
	if c, ok := p.PortClass[ttp.DstPort]; ok {
		return c
	}
	return p.Default
}

// Opaque implements Classifier.
func (p *PortClassifier) Opaque() bool { return p.opaque }

// Job is one packet offered to a link scheduler.
type Job struct {
	Class  Class
	Bytes  int
	Arrive sim.Time
	// Depart is filled by Run.
	Depart sim.Time
	// seq preserves arrival order for FIFO tie-breaks.
	seq int
}

// Delay returns the queueing+transmission delay the job experienced.
func (j *Job) Delay() sim.Time { return j.Depart - j.Arrive }

// Discipline selects the scheduling algorithm.
type Discipline uint8

// Scheduling disciplines.
const (
	// FIFO serves in arrival order regardless of class.
	FIFO Discipline = iota
	// StrictPriority always serves the highest non-empty class.
	StrictPriority
	// WFQ shares capacity in proportion to per-class weights.
	WFQ
)

// LinkSim is an offline single-server link scheduler simulation: add all
// arrivals, call Run, read per-job departure times.
type LinkSim struct {
	// Capacity is the service rate in bytes/second.
	Capacity float64
	// Weights are per-class WFQ weights (ignored by other disciplines);
	// zero entries default to 1.
	Weights [NumClasses]float64
	Disc    Discipline

	jobs []*Job
}

// NewLinkSim creates a scheduler simulation.
func NewLinkSim(capacity float64, disc Discipline) *LinkSim {
	return &LinkSim{Capacity: capacity, Disc: disc}
}

// Add offers a job to the link and returns it (Depart is set by Run).
func (l *LinkSim) Add(class Class, bytes int, arrive sim.Time) *Job {
	j := &Job{Class: class, Bytes: bytes, Arrive: arrive, seq: len(l.jobs)}
	l.jobs = append(l.jobs, j)
	return j
}

// Run computes departure times for all offered jobs.
func (l *LinkSim) Run() {
	switch l.Disc {
	case FIFO:
		l.runFIFO()
	case StrictPriority:
		l.runPriority()
	case WFQ:
		l.runWFQ()
	}
}

func (l *LinkSim) tx(bytes int) sim.Time {
	return sim.Time(float64(bytes) / l.Capacity * float64(sim.Second))
}

func (l *LinkSim) sortedByArrival() []*Job {
	js := make([]*Job, len(l.jobs))
	copy(js, l.jobs)
	sort.SliceStable(js, func(i, j int) bool { return js[i].Arrive < js[j].Arrive })
	return js
}

func (l *LinkSim) runFIFO() {
	var busy sim.Time
	for _, j := range l.sortedByArrival() {
		start := j.Arrive
		if busy > start {
			start = busy
		}
		j.Depart = start + l.tx(j.Bytes)
		busy = j.Depart
	}
}

func (l *LinkSim) runPriority() {
	js := l.sortedByArrival()
	pending := make([][]*Job, NumClasses)
	var busy sim.Time
	i := 0
	remaining := len(js)
	for remaining > 0 {
		// Admit arrivals up to the server-free time.
		for i < len(js) && js[i].Arrive <= busy {
			pending[js[i].Class] = append(pending[js[i].Class], js[i])
			i++
		}
		// Pick the highest non-empty class.
		var pick *Job
		for c := NumClasses - 1; c >= 0; c-- {
			if len(pending[c]) > 0 {
				pick = pending[c][0]
				pending[c] = pending[c][1:]
				break
			}
		}
		if pick == nil {
			// Idle: jump to the next arrival.
			busy = js[i].Arrive
			continue
		}
		start := pick.Arrive
		if busy > start {
			start = busy
		}
		pick.Depart = start + l.tx(pick.Bytes)
		busy = pick.Depart
		remaining--
	}
}

// runWFQ implements weighted fair queueing via virtual finish times
// (the standard packetized GPS approximation with a simplified virtual
// clock equal to real time).
func (l *LinkSim) runWFQ() {
	js := l.sortedByArrival()
	var lastFinish [NumClasses]float64
	type entry struct {
		j      *Job
		finish float64
	}
	entries := make([]entry, 0, len(js))
	for _, j := range js {
		w := l.Weights[j.Class]
		if w <= 0 {
			w = 1
		}
		start := j.Arrive.Seconds()
		if lastFinish[j.Class] > start {
			start = lastFinish[j.Class]
		}
		finish := start + float64(j.Bytes)/(l.Capacity*w)
		lastFinish[j.Class] = finish
		entries = append(entries, entry{j, finish})
	}
	// Serve in virtual-finish order, but never before arrival.
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].finish < entries[b].finish })
	var busy sim.Time
	served := make([]bool, len(entries))
	for count := 0; count < len(entries); {
		idx := -1
		for k, e := range entries {
			if served[k] {
				continue
			}
			if e.j.Arrive <= busy {
				idx = k
				break
			}
		}
		if idx == -1 {
			// Idle: advance to the earliest unserved arrival.
			var earliest sim.Time = 1<<62 - 1
			for k, e := range entries {
				if !served[k] && e.j.Arrive < earliest {
					earliest = e.j.Arrive
				}
			}
			busy = earliest
			continue
		}
		j := entries[idx].j
		start := j.Arrive
		if busy > start {
			start = busy
		}
		j.Depart = start + l.tx(j.Bytes)
		busy = j.Depart
		served[idx] = true
		count++
	}
}

// MeanDelayByClass summarizes the run.
func (l *LinkSim) MeanDelayByClass() [NumClasses]sim.Time {
	var sums [NumClasses]sim.Time
	var counts [NumClasses]int
	for _, j := range l.jobs {
		sums[j.Class] += j.Delay()
		counts[j.Class]++
	}
	var out [NumClasses]sim.Time
	for c := range out {
		if counts[c] > 0 {
			out[c] = sums[c] / sim.Time(counts[c])
		}
	}
	return out
}
