package wire

import "testing"

func TestArenaCheckout(t *testing.T) {
	a := NewArena(4, 128)
	if a.Slots() != 4 || a.SlotSize() != 128 {
		t.Fatalf("arena geometry = %d×%d, want 4×128", a.Slots(), a.SlotSize())
	}
	seen := map[int32]bool{}
	var bufs [][]byte
	for i := 0; i < 4; i++ {
		idx, b := a.Get()
		if idx < 0 || len(b) != 128 {
			t.Fatalf("Get %d = (%d, len %d)", i, idx, len(b))
		}
		if seen[idx] {
			t.Fatalf("slot %d handed out twice", idx)
		}
		seen[idx] = true
		bufs = append(bufs, b)
	}
	if idx, b := a.Get(); idx != -1 || b != nil {
		t.Fatalf("exhausted arena returned slot %d", idx)
	}
	if a.InUse() != 4 {
		t.Fatalf("InUse = %d, want 4", a.InUse())
	}
	// Slots must not overlap: writing one buffer end to end leaves the
	// others untouched.
	for i := range bufs[1] {
		bufs[1][i] = 0xAB
	}
	for _, other := range [][]byte{bufs[0], bufs[2], bufs[3]} {
		for _, c := range other {
			if c == 0xAB {
				t.Fatal("arena slots overlap")
			}
		}
	}
}

func TestArenaPutReuses(t *testing.T) {
	a := NewArena(2, 64)
	i0, _ := a.Get()
	i1, _ := a.Get()
	a.Put(i0)
	if got, _ := a.Get(); got != i0 {
		t.Fatalf("Get after Put = slot %d, want recycled %d", got, i0)
	}
	a.Put(i1)
	if a.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", a.InUse())
	}
}

func TestArenaDoublePutPanics(t *testing.T) {
	a := NewArena(2, 64)
	idx, _ := a.Get()
	a.Put(idx)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	a.Put(idx)
}

func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	a := NewArena(8, 256)
	allocs := testing.AllocsPerRun(500, func() {
		i0, _ := a.Get()
		i1, _ := a.Get()
		a.Put(i1)
		a.Put(i0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put costs %.1f allocs, want 0", allocs)
	}
}
