// Congestion tussle: §II-B's lead example run end to end. Ten flows
// share a bottleneck; first everyone follows the AIMD rules (the social
// contract), then defectors appear, and the example shows the three
// responses the paper discusses: do nothing (FIFO — "the technical
// design will do nothing to bound the shift"), out-of-band enforcement
// (social pressure converting cheaters), and a mechanism that bounds the
// tussle inside the design (fair queueing).
//
// Run with: go run ./examples/congestion_tussle
package main

import (
	"fmt"

	"repro/internal/congestion"
	"repro/internal/sim"
)

func flows(cheaters int) []*congestion.Flow {
	var out []*congestion.Flow
	for i := 0; i < 10; i++ {
		out = append(out, congestion.NewFlow(fmt.Sprintf("flow-%d", i), i < cheaters))
	}
	return out
}

func report(label string, b *congestion.Bottleneck) {
	cheaterShare := b.ShareOf(func(f *congestion.Flow) bool { return f.Aggressive })
	fmt.Printf("  %-34s goodput %5.1f/100  loss %4.1f%%  cheater share %4.1f%%  fairness %.2f\n",
		label, b.Goodput(), b.LossRate()*100, cheaterShare*100, b.JainIndex())
}

func main() {
	const rounds = 600

	fmt.Println("the social contract holds (all 10 flows follow AIMD):")
	b := congestion.NewBottleneck(100, congestion.SharedFIFO, flows(0)...)
	b.Run(rounds)
	report("shared FIFO, 0 cheaters", b)

	fmt.Println("\nthe balance shifts (3 flows stop backing off):")
	b = congestion.NewBottleneck(100, congestion.SharedFIFO, flows(3)...)
	b.Run(rounds)
	report("shared FIFO, 3 cheaters", b)
	fmt.Println(`  ("should this balance change, the technical design of the system`)
	fmt.Println(`    will do nothing to bound or guide the resulting shift" — §II-B)`)

	fmt.Println("\nresponse 1 — out-of-band enforcement (social pressure):")
	b = congestion.NewBottleneck(100, congestion.SharedFIFO, flows(3)...)
	rng := sim.NewRNG(7)
	converted := congestion.SocialPressure(b, rng, 0.02, rounds)
	report(fmt.Sprintf("FIFO + enforcement (%d converted)", converted), b)

	fmt.Println("\nresponse 2 — a mechanism that bounds the tussle (fair queueing):")
	b = congestion.NewBottleneck(100, congestion.FairQueue, flows(3)...)
	b.Run(rounds)
	report("fair queue, 3 cheaters", b)
	fmt.Println("  (the cheater keeps only the capacity honest flows leave idle —")
	fmt.Println("   defection no longer pays, and no one had to be caught)")
}
