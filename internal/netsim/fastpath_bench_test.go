package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Micro-benchmarks for the forwarding fast path, independent of the
// experiment suite: they give the per-hop loop its own ns/op and
// allocs/op baseline. BenchmarkForwardChain is the zero-alloc proof for
// the steady-state hop — allocs/op is the fixed per-packet cost (Trace +
// event slab) and does not grow with chain length; see
// TestForwardHopZeroAlloc for the pinned invariant.

// benchChain returns a ready chain network and a pristine packet that
// crosses it end to end.
func benchChain(b *testing.B, nodes int) (*Network, *sim.Scheduler, []byte) {
	b.Helper()
	n, sched := linearNet(b, nodes)
	n.TraceEventCap = nodes + 2
	return n, sched, rawPacket(b, 1, topology.NodeID(nodes), uint8(nodes+8), 256)
}

// BenchmarkForwardChain is one packet traversing a 16-hop chain with no
// middleboxes: pure decode-once forwarding, dense link lookups, pooled
// flight scheduling.
func BenchmarkForwardChain(b *testing.B) {
	n, sched, pristine := benchChain(b, 16)
	buf := make([]byte, len(pristine))
	copy(buf, pristine)
	tr := n.Send(1, buf)
	sched.Run() // warm pools
	if !tr.Delivered {
		b.Fatalf("drop: %s", tr.DropReason)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, pristine)
		tr := n.Send(1, buf)
		sched.Run()
		if !tr.Delivered {
			b.Fatalf("drop: %s", tr.DropReason)
		}
	}
}

// passBox is a pass-through middlebox (returns nil: the "unmodified"
// contract), so the chain exercises dispatch cost without re-decodes.
type passBox struct{ name string }

func (p *passBox) Name() string { return p.name }
func (p *passBox) Silent() bool { return false }
func (p *passBox) Process(node topology.NodeID, dir Direction, data []byte) ([]byte, Verdict) {
	return nil, Accept
}

// BenchmarkMiddleboxChain runs the same 16-hop chain with three
// pass-through middleboxes per node: the cost of middlebox dispatch on
// every hop when no device transforms or drops.
func BenchmarkMiddleboxChain(b *testing.B) {
	n, sched, pristine := benchChain(b, 16)
	for id := topology.NodeID(1); id <= 16; id++ {
		nd := n.Node(id)
		nd.AddMiddlebox(&passBox{name: "a"})
		nd.AddMiddlebox(&passBox{name: "b"})
		nd.AddMiddlebox(&passBox{name: "c"})
	}
	buf := make([]byte, len(pristine))
	copy(buf, pristine)
	tr := n.Send(1, buf)
	sched.Run()
	if !tr.Delivered {
		b.Fatalf("drop: %s", tr.DropReason)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, pristine)
		tr := n.Send(1, buf)
		sched.Run()
		if !tr.Delivered {
			b.Fatalf("drop: %s", tr.DropReason)
		}
	}
}

// BenchmarkTransmitQueue saturates one slow link with bursts: the
// serialization/backlog arithmetic and the queue-overflow drop path
// (including interned drop counters).
func BenchmarkTransmitQueue(b *testing.B) {
	n, sched := linearNet(b, 2)
	n.LinkRate = 1e4
	n.MaxQueue = 10 * sim.Millisecond
	pristine := rawPacket(b, 1, 2, 8, 64)
	bufs := make([][]byte, 16)
	for i := range bufs {
		bufs[i] = make([]byte, len(pristine))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, buf := range bufs {
			copy(buf, pristine)
			n.Send(1, buf)
		}
		sched.Run()
	}
	if n.Dropped == 0 {
		b.Fatal("burst never overflowed the queue")
	}
}
