package sim

import (
	"testing"
)

// Pending must report live events only — cancelled events are excluded
// even while their heap entries await lazy draining (regression: the
// pre-pool scheduler counted them).
func TestSchedulerPendingExcludesCancelled(t *testing.T) {
	s := NewScheduler()
	ids := make([]EventID, 10)
	for i := range ids {
		ids[i] = s.At(Time(10+i), func() {})
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 4; i++ {
		s.Cancel(ids[i])
	}
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", got)
	}
	// Double-cancel must not double-count.
	s.Cancel(ids[0])
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending after double cancel = %d, want 6", got)
	}
	ran := 0
	for s.Step() {
		ran++
	}
	if ran != 6 {
		t.Fatalf("ran %d events, want 6", ran)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// A stale EventID — one whose slot has been recycled by a later event —
// must not cancel the slot's new tenant.
func TestSchedulerStaleCancelIsInert(t *testing.T) {
	s := NewScheduler()
	stale := s.At(10, func() {})
	s.Cancel(stale) // slot freed, generation bumped

	ran := false
	s.At(20, func() { ran = true }) // expected to recycle the freed slot

	s.Cancel(stale) // stale id: same slot, old generation — must be a no-op
	s.Run()
	if !ran {
		t.Fatal("stale Cancel killed an unrelated recycled event")
	}
}

// Cancelling an event that already ran must not kill a later event that
// recycled its slot.
func TestSchedulerCancelAfterRunIsInert(t *testing.T) {
	s := NewScheduler()
	var id1 EventID
	ran2 := false
	id1 = s.At(10, func() {
		// id1's slot is released before fn runs; this At may recycle it.
		s.At(20, func() { ran2 = true })
		s.Cancel(id1)
	})
	s.Run()
	if !ran2 {
		t.Fatal("Cancel of an already-run event killed a recycled event")
	}
}

// Mass cancellation must trigger compaction so the heap does not pin
// dead entries for the rest of the run.
func TestSchedulerCompactionAfterMassCancel(t *testing.T) {
	s := NewScheduler()
	ids := make([]EventID, 1000)
	for i := range ids {
		ids[i] = s.At(Time(i+1), func() {})
	}
	for _, id := range ids[:900] {
		s.Cancel(id)
	}
	if got := s.Pending(); got != 100 {
		t.Fatalf("Pending = %d, want 100", got)
	}
	if len(s.queue) > 200 {
		t.Fatalf("heap holds %d entries after mass cancel, want compaction to <= 200", len(s.queue))
	}
	ran := 0
	for s.Step() {
		ran++
	}
	if ran != 100 {
		t.Fatalf("ran %d events, want 100", ran)
	}
}

// Interleaved schedule/cancel/run must preserve timestamp-then-FIFO order
// among surviving events.
func TestSchedulerOrderWithCancellations(t *testing.T) {
	s := NewScheduler()
	var order []int
	keep := func(n int) EventID { return s.At(Time(n), func() { order = append(order, n) }) }
	keep(5)
	c1 := keep(3)
	keep(8)
	c2 := keep(1)
	keep(3) // same time as c1, later seq — must still run after nothing (c1 dead)
	s.Cancel(c1)
	s.Cancel(c2)
	s.Run()
	want := []int{3, 5, 8}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Steady-state scheduling must not allocate: slots and heap entries are
// recycled once the pool reaches its high-water mark.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the pool and heap to their high-water marks.
	for i := 0; i < 64; i++ {
		s.After(1, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.After(1, fn)
		}
		s.Run()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule+run allocated %.1f times per run, want 0", allocs)
	}
}

// The zero EventID is valid and cancels nothing.
func TestSchedulerCancelZeroID(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(1, func() { ran = true })
	s.Cancel(EventID{})
	s.Run()
	if !ran {
		t.Fatal("Cancel of zero EventID killed a live event")
	}
}
