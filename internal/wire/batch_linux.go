//go:build linux && (amd64 || arm64)

package wire

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// Batched UDP I/O for 64-bit Linux: recvmmsg/sendmmsg move a whole
// batch of datagrams per syscall, invoked through the runtime
// netpoller (RawConn Read/Write with MSG_DONTWAIT) so workers still
// park cheaply when idle and deadlines/Close behave normally. Every
// header, iovec, and sockaddr buffer is preallocated; the per-batch
// path allocates nothing.
//
// sendmmsg has no syscall.SYS_ constant in the stdlib; its per-arch
// number lives in batch_linux_{amd64,arm64}.go. recvmmsg uses
// syscall.SYS_RECVMMSG, which exists on both.

// batchIO reports that this platform runs the batched syscall path
// (and can bind one SO_REUSEPORT socket per worker).
const batchIO = true

// sockaddrBuf is sizeof(struct sockaddr_in6), the largest address the
// engine handles.
const sockaddrBuf = 28

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: the msghdr plus the
// kernel-written datagram length, padded to 8 bytes.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   uint32
}

// rxBatch is the receive side: headers and sockaddr buffers wired to
// the caller's slot buffers once at construction.
type rxBatch struct {
	rc   syscall.RawConn
	msgs []mmsghdr
	iov  []syscall.Iovec
	name [][sockaddrBuf]byte

	readFn func(fd uintptr) bool // prebuilt: closures must not allocate per batch
	got    int
}

func newRxBatch(conn *net.UDPConn, bufs [][]byte) (*rxBatch, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := len(bufs)
	r := &rxBatch{
		rc:   rc,
		msgs: make([]mmsghdr, b),
		iov:  make([]syscall.Iovec, b),
		name: make([][sockaddrBuf]byte, b),
	}
	for i := range r.msgs {
		r.iov[i].Base = &bufs[i][0]
		r.iov[i].Len = uint64(len(bufs[i]))
		r.msgs[i].hdr.Iov = &r.iov[i]
		r.msgs[i].hdr.Iovlen = 1
		r.msgs[i].hdr.Name = &r.name[i][0]
		r.msgs[i].hdr.Namelen = sockaddrBuf
	}
	r.readFn = func(fd uintptr) bool {
		// The kernel overwrites Namelen per datagram; restore before
		// each receive so reused headers keep their full buffer.
		for i := range r.msgs {
			r.msgs[i].hdr.Namelen = sockaddrBuf
		}
		for {
			n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.msgs[0])), uintptr(len(r.msgs)),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				r.got = int(n)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park in the netpoller until readable
			default:
				r.got = -1
				return true
			}
		}
	}
	return r, nil
}

// recv fills the slot buffers with up to len(bufs) datagrams and
// returns how many arrived. It blocks (in the netpoller) when the
// socket is idle and returns an error once the socket is closed.
func (r *rxBatch) recv() (int, error) {
	if err := r.rc.Read(r.readFn); err != nil {
		return 0, err
	}
	if r.got < 0 {
		return 0, syscall.EIO
	}
	return r.got, nil
}

// length returns datagram i's byte count.
func (r *rxBatch) length(i int) int { return int(r.msgs[i].n) }

// from returns datagram i's sender address.
func (r *rxBatch) from(i int) netip.AddrPort {
	b := &r.name[i]
	fam := uint16(b[0]) | uint16(b[1])<<8
	port := uint16(b[2])<<8 | uint16(b[3])
	if fam == syscall.AF_INET {
		return netip.AddrPortFrom(netip.AddrFrom4([4]byte{b[4], b[5], b[6], b[7]}), port)
	}
	var ip [16]byte
	copy(ip[:], b[8:24])
	// Keep 4-in-6 mapped addresses mapped: replies go back out the same
	// (v6) socket, which wants an AF_INET6 sockaddr.
	return netip.AddrPortFrom(netip.AddrFrom16(ip), port)
}

// txBatch is the send side: reusable headers filled from a []txEntry
// per send call.
type txBatch struct {
	rc   syscall.RawConn
	msgs []mmsghdr
	iov  []syscall.Iovec
	name [][sockaddrBuf]byte

	writeFn func(fd uintptr) bool
	queued  int
	done    int
	failed  bool
}

func newTxBatch(conn *net.UDPConn, capacity int) (*txBatch, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	t := &txBatch{
		rc:   rc,
		msgs: make([]mmsghdr, capacity),
		iov:  make([]syscall.Iovec, capacity),
		name: make([][sockaddrBuf]byte, capacity),
	}
	for i := range t.msgs {
		t.msgs[i].hdr.Iov = &t.iov[i]
		t.msgs[i].hdr.Iovlen = 1
		t.msgs[i].hdr.Name = &t.name[i][0]
	}
	t.writeFn = func(fd uintptr) bool {
		for t.done < t.queued {
			n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&t.msgs[t.done])), uintptr(t.queued-t.done),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				t.done += int(n)
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until writable
			default:
				t.failed = true
				return true
			}
		}
		return true
	}
	return t, nil
}

// send transmits the entries (at most the batch capacity) and returns
// how many went out plus how many failed.
func (t *txBatch) send(entries []txEntry) (sent, errs int) {
	if len(entries) > len(t.msgs) {
		entries = entries[:len(t.msgs)]
	}
	for i := range entries {
		e := &entries[i]
		t.iov[i].Base = &e.data[0]
		t.iov[i].Len = uint64(len(e.data))
		t.msgs[i].hdr.Namelen = writeSockaddr(&t.name[i], e.addr)
	}
	t.queued = len(entries)
	t.done = 0
	t.failed = false
	if err := t.rc.Write(t.writeFn); err != nil || t.failed {
		return t.done, t.queued - t.done
	}
	return t.done, 0
}

// writeSockaddr encodes ap into b as a sockaddr_in / sockaddr_in6 and
// returns the struct length.
func writeSockaddr(b *[sockaddrBuf]byte, ap netip.AddrPort) uint32 {
	a := ap.Addr()
	p := ap.Port()
	if a.Is4() {
		b[0], b[1] = byte(syscall.AF_INET), 0
		b[2], b[3] = byte(p>>8), byte(p)
		ip := a.As4()
		copy(b[4:8], ip[:])
		for i := 8; i < 16; i++ {
			b[i] = 0
		}
		return syscall.SizeofSockaddrInet4
	}
	b[0], b[1] = byte(syscall.AF_INET6), 0
	b[2], b[3] = byte(p>>8), byte(p)
	b[4], b[5], b[6], b[7] = 0, 0, 0, 0 // flowinfo
	ip := a.As16()
	copy(b[8:24], ip[:])
	b[24], b[25], b[26], b[27] = 0, 0, 0, 0 // scope
	return syscall.SizeofSockaddrInet6
}

// listenConfig returns a ListenConfig that sets SO_REUSEPORT, so every
// worker binds its own socket on the same port and the kernel
// load-balances flows across them.
func listenConfig() net.ListenConfig {
	return net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReuseport, 1)
		})
		if err != nil {
			return err
		}
		return serr
	}}
}

// soReuseport is SO_REUSEPORT, absent from the stdlib syscall package.
const soReuseport = 0x0f
