package main

// Wire mode: tussled as a live UDP element. -listen turns the process
// into a TIP forwarding/delivery node driven by internal/wire's batched
// engine; -blast turns it into the matching load generator. The
// scenario mode in main.go is untouched — wire mode is dispatched
// before it.

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/wire"
)

// peerFlag accumulates repeated -peer id=addr mappings.
type peerFlag map[topology.NodeID]netip.AddrPort

func (p peerFlag) String() string {
	var parts []string
	for id, a := range p {
		parts = append(parts, fmt.Sprintf("%d=%s", id, a))
	}
	return strings.Join(parts, ",")
}

func (p peerFlag) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=host:port, got %q", v)
	}
	n, err := strconv.ParseUint(id, 10, 16)
	if err != nil {
		return fmt.Errorf("peer id %q: %w", id, err)
	}
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return fmt.Errorf("peer addr %q: %w", addr, err)
	}
	p[topology.NodeID(n)] = ap
	return nil
}

// parseTIPAddr reads "provider.host" (e.g. "4.1") into a packet.Addr.
func parseTIPAddr(s string) (packet.Addr, error) {
	ps, hs, ok := strings.Cut(s, ".")
	if !ok {
		return 0, fmt.Errorf("want provider.host, got %q", s)
	}
	p, err := strconv.ParseUint(ps, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("provider %q: %w", ps, err)
	}
	h, err := strconv.ParseUint(hs, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("host %q: %w", hs, err)
	}
	return packet.MakeAddr(uint16(p), uint16(h)), nil
}

// runServe is tussled -listen: serve TIP over UDP until SIGINT, then
// flush profiles and print the final counters.
func runServe(args []string) int {
	fs := flag.NewFlagSet("tussled -listen", flag.ExitOnError)
	listen := fs.String("listen", "", "UDP address to serve TIP on")
	node := fs.Uint("node", 1, "this element's node ID (TIP provider number)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "receive workers (one socket each where SO_REUSEPORT is available)")
	batch := fs.Int("batch", 64, "recvmmsg/sendmmsg batch size")
	echo := fs.Bool("echo", false, "echo delivered datagrams back to the sender")
	srcroute := fs.Bool("srcroute", false, "honor source-route options")
	srcroutePaid := fs.Bool("srcroute-paid", false, "honor source routes only when the packet carries a payment option")
	srcroutePolicy := fs.String("srcroute-policy", "", "honor source routes only when this TPL expression holds (attrs: paid, ttl, dst-provider, src-provider, waypoint-provider); compiled once, metered per packet; implies -srcroute")
	filterStats := fs.Bool("filter-stats", false, "print counters (with the sanity-filter verdict histogram) every second")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the serve loop to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile (at shutdown) to this file")
	peers := peerFlag{}
	fs.Var(peers, "peer", "next-hop mapping id=host:port (repeatable)")
	fs.Parse(args)

	var srPolicy *netsim.SourceRoutePolicy
	if *srcroutePolicy != "" {
		var err error
		if srPolicy, err = netsim.CompileSourceRoutePolicy(*srcroutePolicy); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: -srcroute-policy: %v\n", err)
			return 1
		}
	}

	id := topology.NodeID(*node)
	peerIDs := make([]topology.NodeID, 0, len(peers))
	for pid := range peers {
		peerIDs = append(peerIDs, pid)
	}
	// Provider-is-node routing: a destination in provider P goes to the
	// peer serving node P. No peer, no route.
	route := func(dst packet.Addr, tip *packet.TIP) (topology.NodeID, bool) {
		next := topology.NodeID(dst.Provider())
		_, ok := peers[next]
		return next, ok
	}
	eng, err := wire.New(wire.Config{
		Listen:  *listen,
		Workers: *workers,
		Batch:   *batch,
		Echo:    *echo,
		Peers:   peers,
		NewDataplane: func() *wire.Dataplane {
			return wire.NewDataplane(wire.NodeConfig{
				ID:                           id,
				Route:                        route,
				HonorSourceRoutes:            *srcroute || *srcroutePaid || srPolicy != nil,
				RequirePaymentForSourceRoute: *srcroutePaid,
				SourceRoutePolicy:            srPolicy,
				Peers:                        peerIDs,
			})
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: %v\n", err)
		return 1
	}

	var cpuf *os.File
	if *cpuprofile != "" {
		if cpuf, err = os.Create(*cpuprofile); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(cpuf); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: cpuprofile: %v\n", err)
			return 1
		}
	}

	fmt.Printf("tussled: node %d serving TIP on %s (%d workers, batch %d)\n", id, eng.Addr(), *workers, *batch)
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Run()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *filterStats {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
	loop:
		for {
			select {
			case <-tick.C:
				fmt.Println(eng.Stats().String())
			case <-sig:
				break loop
			}
		}
	} else {
		<-sig
	}

	eng.Close()
	<-done
	if cpuf != nil {
		pprof.StopCPUProfile()
		cpuf.Close()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tussled: memprofile: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: memprofile: %v\n", err)
			return 1
		}
		f.Close()
	}
	fmt.Println(eng.Stats().String())
	return 0
}

// runBlast is tussled -blast: the load-generator side.
func runBlast(args []string) int {
	fs := flag.NewFlagSet("tussled -blast", flag.ExitOnError)
	target := fs.String("blast", "", "target UDP address to blast TIP datagrams at")
	count := fs.Int("count", 100000, "datagrams to send")
	dst := fs.String("dst", "1.1", "TIP destination address as provider.host (default delivers at a default -listen node)")
	src := fs.String("src", "1.1", "TIP source address as provider.host")
	payload := fs.String("payload", "tussled-blast", "datagram payload")
	batch := fs.Int("batch", 64, "sendmmsg batch size")
	conns := fs.Int("conns", 1, "parallel client sockets (distinct source ports)")
	echo := fs.Bool("echo", false, "expect echoes back and pace against them")
	fs.Parse(args)

	ap, err := netip.ParseAddrPort(*target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: blast target: %v\n", err)
		return 64
	}
	d, err := parseTIPAddr(*dst)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: -dst: %v\n", err)
		return 64
	}
	s, err := parseTIPAddr(*src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: -src: %v\n", err)
		return 64
	}
	data, err := packet.Serialize(
		&packet.TIP{TTL: 16, Proto: packet.LayerTypeRaw, Src: s, Dst: d},
		&packet.Raw{Data: []byte(*payload)})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: %v\n", err)
		return 1
	}
	res, err := wire.Blast(wire.BlastConfig{
		Target:  ap,
		Count:   *count,
		Packets: [][]byte{data},
		Batch:   *batch,
		Conns:   *conns,
		Echo:    *echo,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: blast: %v\n", err)
		return 1
	}
	fmt.Printf("blast: sent=%d send-errors=%d received=%d lost=%d elapsed=%s pps=%.0f\n",
		res.Sent, res.SendErrors, res.Received, res.Lost, res.Elapsed.Round(time.Millisecond), res.PPS())
	return 0
}

// wireMode dispatches -listen / -blast before the scenario flag set
// sees the arguments. It returns false when neither flag is present.
func wireMode() (int, bool) {
	for _, a := range os.Args[1:] {
		name, _, _ := strings.Cut(strings.TrimLeft(a, "-"), "=")
		switch name {
		case "listen":
			return runServe(os.Args[1:]), true
		case "blast":
			return runBlast(os.Args[1:]), true
		}
	}
	return 0, false
}
