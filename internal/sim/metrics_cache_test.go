package sim

import (
	"math"
	"sort"
	"testing"
)

// naiveSeries is the reference implementation: every statistic recomputes
// from scratch on a fresh sorted copy, exactly as the pre-cache Series
// did. The cached Series must agree with it under any interleaving of
// Adds and statistic calls.
type naiveSeries struct {
	vals []float64
	sum  float64
}

func (s *naiveSeries) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
}

func (s *naiveSeries) sorted() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	sort.Float64s(out)
	return out
}

func (s *naiveSeries) Min() float64 {
	if len(s.vals) == 0 {
		return 0 // the empty-series sentinel, matching Series.Min
	}
	min := math.Inf(1)
	for _, v := range s.vals {
		if v < min {
			min = v
		}
	}
	return min
}

func (s *naiveSeries) Max() float64 {
	if len(s.vals) == 0 {
		return 0 // the empty-series sentinel, matching Series.Max
	}
	max := math.Inf(-1)
	for _, v := range s.vals {
		if v > max {
			max = v
		}
	}
	return max
}

func (s *naiveSeries) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := s.sorted()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

func (s *naiveSeries) Gini() float64 {
	n := len(s.vals)
	if n == 0 || s.sum == 0 {
		return 0
	}
	var cum float64
	for i, v := range s.sorted() {
		cum += v * float64(2*(i+1)-n-1)
	}
	return cum / (float64(n) * s.sum)
}

// TestSeriesCacheMatchesNaive interleaves Adds with statistic reads in a
// deterministic but adversarial schedule: reads between every batch of
// writes, repeated reads with no intervening write (served from cache),
// and reads immediately after a single Add (cache invalidation).
func TestSeriesCacheMatchesNaive(t *testing.T) {
	rng := NewRNG(99)
	var cached Series
	var naive naiveSeries
	check := func(step int) {
		t.Helper()
		for _, p := range []float64{0, 10, 50, 90, 99, 100} {
			if c, n := cached.Percentile(p), naive.Percentile(p); c != n {
				t.Fatalf("step %d: Percentile(%v) = %v, naive = %v", step, p, c, n)
			}
		}
		if c, n := cached.Gini(), naive.Gini(); c != n {
			t.Fatalf("step %d: Gini = %v, naive = %v", step, c, n)
		}
		if c, n := cached.Min(), naive.Min(); c != n {
			t.Fatalf("step %d: Min = %v, naive = %v", step, c, n)
		}
		if c, n := cached.Max(), naive.Max(); c != n {
			t.Fatalf("step %d: Max = %v, naive = %v", step, c, n)
		}
	}
	check(-1) // empty-series statistics must also agree
	for step := 0; step < 200; step++ {
		batch := rng.Intn(4) // 0..3 writes between reads, including none
		for i := 0; i < batch; i++ {
			v := rng.Float64() * 100
			cached.Add(v)
			naive.Add(v)
		}
		check(step)
		check(step) // immediate re-read: must serve from cache unchanged
	}
	if cached.N() != len(naive.vals) || cached.Sum() != naive.sum {
		t.Fatalf("N/Sum diverged: %d/%v vs %d/%v", cached.N(), cached.Sum(), len(naive.vals), naive.sum)
	}
}

// A single Add between reads must invalidate the cache even when the new
// value lands in the middle of the sorted order.
func TestSeriesCacheInvalidation(t *testing.T) {
	var s Series
	s.Add(1)
	s.Add(100)
	if p := s.Percentile(50); p != 1 {
		t.Fatalf("p50 of {1,100} = %v, want 1", p)
	}
	s.Add(50) // mid-range insert after a cached sort
	if p := s.Percentile(50); p != 50 {
		t.Fatalf("p50 of {1,50,100} = %v, want 50 (stale cache?)", p)
	}
	if m := s.Max(); m != 100 {
		t.Fatalf("Max = %v, want 100", m)
	}
	s.Add(-5)
	if m := s.Min(); m != -5 {
		t.Fatalf("Min after Add(-5) = %v, want -5", m)
	}
	if p := s.Percentile(0); p != -5 {
		t.Fatalf("p0 after Add(-5) = %v, want -5", p)
	}
}

// Values must stay in insertion order regardless of cache state.
func TestSeriesValuesUnaffectedByCache(t *testing.T) {
	var s Series
	in := []float64{3, 1, 2}
	for _, v := range in {
		s.Add(v)
	}
	s.Percentile(50) // force a sort of the cache
	got := s.Values()
	for i, v := range in {
		if got[i] != v {
			t.Fatalf("Values = %v, want insertion order %v", got, in)
		}
	}
}

// Repeated statistic calls between Adds must not re-sort: the second call
// on a clean cache performs no allocations.
func TestSeriesCachedReadDoesNotAllocate(t *testing.T) {
	var s Series
	for i := 0; i < 1000; i++ {
		s.Add(float64(i * 7 % 1000))
	}
	s.Percentile(50) // build the cache
	allocs := testing.AllocsPerRun(100, func() {
		s.Percentile(99)
		s.Gini()
		s.Min()
		s.Max()
	})
	if allocs > 0 {
		t.Fatalf("cached reads allocated %.1f times per run, want 0", allocs)
	}
}
