// Package multipath implements reliable multipath transport: a stream
// striped across k user-discovered source routes, with per-path failure
// detection and failover. It is the data-plane half of the paper's
// "design for choice" prescription (§IV-B, §V-A4): where
// internal/transport commits a transfer to whatever path the network's
// routing tussle produces, this sender holds several link-disjoint
// routes at once and reacts to each path's fate independently — a link
// flap, a provider crash, or a partition kills at most the paths that
// cross it, and the stream migrates to the survivors within a few
// retransmission timeouts instead of stalling for the fault's duration.
//
// Per-path machinery, mirroring a real multipath transport in
// miniature:
//
//   - RTO: per-path retransmission timeouts seeded from measured SRTT
//     (Jacobson-style SRTT/RTTVAR from unambiguous ACK samples, Karn's
//     rule on retransmitted segments), exponential backoff with seeded
//     jitter;
//   - loss: an EWMA over timeout/delivery outcomes per path, fed to
//     loss-adaptive scheduling;
//   - demotion: consecutive timeouts demote a path to probation, where
//     it carries no new data;
//   - probation probing: a demoted path is probed with duplicate
//     copies of the lowest unacknowledged segment (harmless to the
//     receiver, which deduplicates) until it answers or exhausts its
//     probe budget and is declared dead;
//   - promotion: an ACK echoing a probation path's ID proves the path
//     delivers again and returns it to the active set.
//
// ACKs echo the path ID that carried the triggering data segment in the
// (otherwise unused) TTP Window field, and the receiver source-routes
// each ACK back along the reverse of the arrival route, so both
// directions of a path are exercised and credited together.
//
// The state machine is substrate-independent: it runs against the
// Clock/Driver seam in clock.go, so the identical demotion / probation /
// promotion code drives both the simulator (NewSender, on the event
// scheduler) and real UDP sockets (internal/wire's MultipathSender, on
// the wall clock). All randomness (RTO jitter) derives from the
// configured seed through one RNG stream per path — never from draw
// order across paths — so the same seed reproduces the same decisions
// on both substrates.
package multipath

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config tunes a multipath transfer.
type Config struct {
	// Paths is the number of concurrent paths to request from the
	// strategy (strategies may select fewer, or more for
	// disjointness-max).
	Paths int
	// MaxPathLen bounds discovered paths in nodes.
	MaxPathLen int
	// Window is the transfer-wide sending window in segments.
	Window int
	// SegmentSize is payload bytes per segment.
	SegmentSize int
	// RTO is the floor retransmission timeout; per-path timeouts use
	// max(RTO, SRTT+4·RTTVAR) once a path has RTT samples.
	RTO sim.Time
	// MaxRetries gives up on the transfer after this many
	// retransmissions of a single segment.
	MaxRetries int
	// Backoff multiplies the timeout per successive retransmission of a
	// segment; MaxRTO caps it; JitterFrac stretches each timeout by a
	// seeded uniform factor in [1, 1+JitterFrac).
	Backoff    float64
	MaxRTO     sim.Time
	JitterFrac float64
	// DemoteAfter is the consecutive-timeout count that demotes a path
	// to probation.
	DemoteAfter int
	// ProbeEvery is the probation probe interval; MaxProbes unanswered
	// probes declare the path dead.
	ProbeEvery sim.Time
	MaxProbes  int
	// Seed drives the jitter RNGs (mixed with endpoints, as in
	// transport.Config, then forked once per path).
	Seed uint64
	// ContentType declares what the stream carries (TTP.Next).
	ContentType packet.LayerType
}

// DefaultConfig mirrors transport.DefaultConfig with multipath knobs:
// three paths, a demotion trigger fast enough to migrate within two
// RTOs, and probing that revives a healed path in ~150ms.
func DefaultConfig() Config {
	return Config{
		Paths: 3, MaxPathLen: 8, Window: 16, SegmentSize: 512,
		RTO: 60 * sim.Millisecond, MaxRetries: 30,
		Backoff: 2, MaxRTO: sim.Second, JitterFrac: 0.1,
		DemoteAfter: 2, ProbeEvery: 150 * sim.Millisecond, MaxProbes: 12,
		ContentType: packet.LayerTypeRaw,
	}
}

// withDefaults fills unset knobs, exactly as NewSender always has.
func (cfg Config) withDefaults() Config {
	if cfg.Window <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Paths <= 0 {
		cfg.Paths = 3
	}
	if cfg.MaxPathLen <= 0 {
		cfg.MaxPathLen = 8
	}
	if cfg.DemoteAfter <= 0 {
		cfg.DemoteAfter = 2
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 150 * sim.Millisecond
	}
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 12
	}
	return cfg
}

// PathState is a path's position in the demotion state machine.
type PathState uint8

const (
	// PathActive paths carry new data.
	PathActive PathState = iota
	// PathProbation paths carry only probes until one is answered.
	PathProbation
	// PathDead paths exhausted their probe budget.
	PathDead
)

// String renders the state for stats output.
func (st PathState) String() string {
	switch st {
	case PathActive:
		return "active"
	case PathProbation:
		return "probation"
	default:
		return "dead"
	}
}

// Path is one source route's live state. Fields are exported for
// experiments and stats snapshots; they are owned by the sender and
// must not be mutated elsewhere.
type Path struct {
	// Index is the path's position in the sender's set (and its on-wire
	// ID, echoed by ACKs as Index+1).
	Index int
	// Cand is the discovered route.
	Cand srcroute.Candidate
	// State is the demotion state machine's position.
	State PathState
	// SRTT/RTTVar are the Jacobson estimators (zero until the first
	// unambiguous sample).
	SRTT   sim.Time
	RTTVar sim.Time
	// Loss is the EWMA loss estimate: timeouts push it toward 1,
	// acknowledged deliveries decay it toward 0.
	Loss float64
	// Consec counts consecutive timeouts since the last credit.
	Consec int

	// Counters.
	Sent, Acked, Retx, Timeouts, Probes int
	Demotions, Promotions               int
	AckedBytes                          int
	LastDemoteAt, LastPromoteAt         sim.Time

	opt        *packet.SourceRouteOption // prebuilt wire option (nil for direct paths)
	probeTimer Timer
	probeGen   uint32 // defuses stale wall-clock probe callbacks
	probes     int    // unanswered probes this probation
	wrrCredit  float64
	rng        *sim.RNG // per-path jitter stream: sim.SeedStream(base, Index)
}

// Stats summarizes a transfer.
type Stats struct {
	// Done reports full delivery; Failed reports give-up, with
	// FailReason saying why.
	Done       bool
	Failed     bool
	FailReason string
	// Segments is the stream's segment count; Sent counts transmissions
	// including retransmissions and probes; Retransmissions counts
	// re-sent data segments; Probes counts probation probes.
	Segments, Sent, Retransmissions, Probes int
	// Demotions/Promotions count path state transitions.
	Demotions, Promotions int
	// PathsUsed is the discovered path count.
	PathsUsed int
	// Elapsed is the transfer duration (to completion or failure).
	Elapsed sim.Time
}

// flight is one outstanding segment's transmission state.
type flight struct {
	path    int
	timer   Timer
	gen     uint32 // bumped per transmit; defuses stale wall-clock timeouts
	sentAt  sim.Time
	retries int
	retx    bool // retransmitted at least once: no RTT sample (Karn)
}

// Sender drives a multipath transfer.
type Sender struct {
	cfg   Config
	strat Strategy
	drv   Driver
	net   *netsim.Network // nil for driver (wire/harness) senders
	node  topology.NodeID
	addr  packet.Addr
	dst   packet.Addr
	port  uint16
	src   uint16

	paths    []*Path
	segments [][]byte
	acked    uint32
	nextSend uint32
	inflight map[uint32]*flight
	parked   map[uint32]bool // timed out with no active path; waiting on promotion
	dupAcks  int

	stats      Stats
	started    sim.Time
	failed     bool
	failReason string

	// ACK decode scratch, reused so the steady-state ACK path allocates
	// nothing on either substrate.
	ackTip packet.TIP
	ackTTP packet.TTP

	// Pre-bound obs handles; nil (zero-cost no-ops) unless AttachObs ran.
	obsSent, obsRetx, obsProbe       *obs.Counter
	obsDemote, obsPromote, obsGiveup *obs.Counter
	obsPathSent, obsPathAcked        []*obs.Counter
}

// NewSender prepares a transfer of data from node src to node dst's
// port, striped across the paths the strategy discovers on the
// network's topology map, driven by the network's scheduler.
func NewSender(net *netsim.Network, strat Strategy, src, dst topology.NodeID, port uint16, data []byte, cfg Config) *Sender {
	cfg = cfg.withDefaults()
	cands := strat.Discover(net.Graph, src, dst, cfg.Paths, cfg.MaxPathLen)
	s := NewDriverSender(Driver{}, strat, cands, src, dst, port, data, cfg)
	s.net = net
	s.drv = Driver{Clock: SimClock{net.Sched}, Xmit: s.simXmit}
	return s
}

// NewDriverSender prepares a transfer over an explicit candidate set on
// an explicit substrate — the constructor behind both the simulator
// wrapper above and the wire engine's MultipathSender. src/dst/port
// feed the jitter-seed mix exactly as in the simulator, so a wire
// sender with matching endpoints draws the same per-path jitter
// streams. The Driver may be zero at construction as long as Clock and
// Xmit are set before Start.
func NewDriverSender(drv Driver, strat Strategy, cands []srcroute.Candidate, src, dst topology.NodeID, port uint16, data []byte, cfg Config) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		cfg: cfg, strat: strat, drv: drv, node: src,
		addr: packet.MakeAddr(uint16(src), 1), dst: packet.MakeAddr(uint16(dst), 1),
		port: port, src: 41000,
		inflight: map[uint32]*flight{},
		parked:   map[uint32]bool{},
	}
	base := cfg.Seed<<20 ^ uint64(src)<<36 ^ uint64(dst)<<8 ^ uint64(port)<<16 ^ 0x6d70617468
	for _, c := range cands {
		p := &Path{
			Index: len(s.paths), Cand: c, opt: c.Option(),
			rng: sim.NewRNG(sim.SeedStream(base, uint64(len(s.paths)))),
		}
		s.paths = append(s.paths, p)
	}
	for off := 0; off < len(data); off += cfg.SegmentSize {
		end := off + cfg.SegmentSize
		if end > len(data) {
			end = len(data)
		}
		seg := make([]byte, end-off)
		copy(seg, data[off:end])
		s.segments = append(s.segments, seg)
	}
	s.stats.Segments = len(s.segments)
	s.stats.PathsUsed = len(s.paths)
	return s
}

// simXmit is the netsim substrate's transmission hook: serialize and
// inject at the sending node.
func (s *Sender) simXmit(p *Path, seq uint32) error {
	data, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: s.addr, Dst: s.dst, SourceRoute: p.opt},
		&packet.TTP{SrcPort: s.src, DstPort: s.port, Seq: seq, Window: uint16(p.Index) + 1, Next: s.contentType()},
		&packet.Raw{Data: s.segments[seq]})
	if err != nil {
		return err
	}
	s.net.Send(s.node, data)
	return nil
}

// SetTrace installs a decision-log hook (see Driver.Trace). Install
// before Start.
func (s *Sender) SetTrace(fn func(string)) { s.drv.Trace = fn }

// AttachObs binds the sender's metrics to a registry: aggregate
// transfer counters plus per-path send/ack counters. Never attached
// (the default), every handle stays nil and the hot paths cost one nil
// check each, mirroring netsim's instrumentation.
func (s *Sender) AttachObs(reg *obs.Registry) {
	s.obsSent = reg.Counter("multipath.sent")
	s.obsRetx = reg.Counter("multipath.retx")
	s.obsProbe = reg.Counter("multipath.probes")
	s.obsDemote = reg.Counter("multipath.demotions")
	s.obsPromote = reg.Counter("multipath.promotions")
	s.obsGiveup = reg.Counter("multipath.giveup")
	s.obsPathSent = make([]*obs.Counter, len(s.paths))
	s.obsPathAcked = make([]*obs.Counter, len(s.paths))
	for i := range s.paths {
		s.obsPathSent[i] = reg.Counter(fmt.Sprintf("multipath.path%d.sent", i))
		s.obsPathAcked[i] = reg.Counter(fmt.Sprintf("multipath.path%d.acked", i))
	}
}

// Start begins the transfer. On the netsim substrate it also hooks ACK
// reception at the sending node; driver senders feed ACKs through
// HandleAck themselves. A sender with no discovered paths fails
// immediately.
func (s *Sender) Start() {
	s.started = s.now()
	if len(s.paths) == 0 {
		s.fail("no paths discovered")
		return
	}
	if s.net != nil {
		nd := s.net.Node(s.node)
		prev := nd.Deliver
		nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
			if !s.HandleAck(data) && prev != nil {
				prev(n, tr, data)
			}
		}
	}
	s.pump()
	s.doFlush()
}

// Done reports whether every segment is acknowledged.
func (s *Sender) Done() bool { return int(s.acked) >= len(s.segments) }

// Failed reports whether the transfer gave up.
func (s *Sender) Failed() bool { return s.failed }

// Acked returns the cumulative acknowledged sequence number.
func (s *Sender) Acked() uint32 { return s.acked }

// Segment returns segment seq's payload (owned by the sender; drivers
// serialize from it without copying).
func (s *Sender) Segment(seq uint32) []byte { return s.segments[seq] }

// Config returns the transfer's configuration with defaults applied.
func (s *Sender) Config() Config { return s.cfg }

// Stats returns the transfer summary.
func (s *Sender) Stats() Stats {
	st := s.stats
	st.Done = s.Done()
	st.Failed = s.failed
	st.FailReason = s.failReason
	return st
}

// Paths returns a snapshot of every path's state (copies; safe to
// keep).
func (s *Sender) Paths() []Path {
	out := make([]Path, len(s.paths))
	for i, p := range s.paths {
		out[i] = *p
	}
	return out
}

func (s *Sender) now() sim.Time { return s.drv.Clock.Now() }

func (s *Sender) doFlush() {
	if s.drv.Flush != nil {
		s.drv.Flush()
	}
}

// tracef emits one decision-log line, prefixed with the clock reading.
// Callers guard with s.drv.Trace != nil so the disabled path costs one
// nil check and boxes no arguments.
func (s *Sender) tracef(format string, args ...any) {
	s.drv.Trace(fmt.Sprintf("t=%d ", int64(s.now())) + fmt.Sprintf(format, args...))
}

func (s *Sender) contentType() packet.LayerType {
	if s.cfg.ContentType == packet.LayerTypeNone {
		return packet.LayerTypeRaw
	}
	return s.cfg.ContentType
}

// eligible returns the active paths in index order.
func (s *Sender) eligible() []*Path {
	var out []*Path
	for _, p := range s.paths {
		if p.State == PathActive {
			out = append(out, p)
		}
	}
	return out
}

func (s *Sender) allDead() bool {
	for _, p := range s.paths {
		if p.State != PathDead {
			return false
		}
	}
	return true
}

// pump dispatches parked retransmissions, then fills the window with
// new segments, as long as an active path exists.
func (s *Sender) pump() {
	if s.failed || s.Done() {
		return
	}
	el := s.eligible()
	if len(el) == 0 {
		return // every path demoted; probes will call back on promotion
	}
	for seq := s.acked; seq < s.nextSend; seq++ {
		if s.parked[seq] {
			delete(s.parked, seq)
			s.transmit(seq, s.strat.Pick(el), true)
		}
	}
	for s.nextSend < uint32(len(s.segments)) && s.nextSend < s.acked+uint32(s.cfg.Window) {
		s.transmit(s.nextSend, s.strat.Pick(el), false)
		s.nextSend++
	}
}

// transmit sends segment seq over path p and arms its timer. retx marks
// a retransmission (counted, and excluded from RTT sampling).
func (s *Sender) transmit(seq uint32, p *Path, retx bool) {
	if err := s.drv.Xmit(p, seq); err != nil {
		s.fail("serialize: " + err.Error())
		return
	}
	fl := s.inflight[seq]
	if fl == nil {
		fl = &flight{}
		s.inflight[seq] = fl
	}
	fl.path = p.Index
	fl.sentAt = s.now()
	fl.retx = fl.retx || retx
	fl.gen++
	s.stats.Sent++
	p.Sent++
	s.obsSent.Inc()
	if p.Index < len(s.obsPathSent) {
		s.obsPathSent[p.Index].Inc()
	}
	if retx {
		p.Retx++
	}
	d := s.rto(p, fl.retries)
	if s.drv.Trace != nil {
		s.tracef("tx seq=%d path=%d retx=%t rto=%d", seq, p.Index, retx, int64(d))
	}
	gen := fl.gen
	fl.timer = s.drv.Clock.After(d, func() { s.timeout(seq, gen) })
}

// rto computes a path's timeout for a segment's attempt'th
// retransmission: max(configured floor, SRTT+4·RTTVAR), backed off
// exponentially and stretched by jitter from the path's own seeded RNG
// stream — never a shared stream, so the draw sequence (and therefore
// the decision log) does not depend on the order in which paths happen
// to arm timers, and simultaneous losses on two paths never produce
// identical retransmit ticks.
func (s *Sender) rto(p *Path, attempt int) sim.Time {
	d := s.cfg.RTO
	if p.SRTT > 0 {
		if est := p.SRTT + 4*p.RTTVar; est > d {
			d = est
		}
	}
	if s.cfg.Backoff > 1 {
		for i := 0; i < attempt; i++ {
			d = sim.Time(float64(d) * s.cfg.Backoff)
			if s.cfg.MaxRTO > 0 && d >= s.cfg.MaxRTO {
				d = s.cfg.MaxRTO
				break
			}
		}
	}
	if s.cfg.JitterFrac > 0 {
		d += sim.Time(p.rng.Float64() * s.cfg.JitterFrac * float64(d))
	}
	return d
}

// timeout handles a segment's retransmission timer: charge the path,
// demote it when it keeps timing out, and re-send the segment over a
// (possibly different) active path — or park it until probing revives
// one. gen defuses stale wall-clock callbacks that fired between a
// cancellation and the lock.
func (s *Sender) timeout(seq uint32, gen uint32) {
	if s.failed || seq < s.acked {
		return
	}
	fl := s.inflight[seq]
	if fl == nil || fl.gen != gen {
		return
	}
	defer s.doFlush()
	fl.timer = nil
	p := s.paths[fl.path]
	p.Timeouts++
	p.Consec++
	p.Loss = 0.75*p.Loss + 0.25
	if s.drv.Trace != nil {
		s.tracef("timeout seq=%d path=%d consec=%d loss=%.4f", seq, p.Index, p.Consec, p.Loss)
	}
	if p.State == PathActive && p.Consec >= s.cfg.DemoteAfter {
		s.demote(p)
	}
	fl.retries++
	if fl.retries > s.cfg.MaxRetries {
		s.fail(fmt.Sprintf("segment %d unacknowledged after %d retransmissions", seq, s.cfg.MaxRetries))
		return
	}
	s.stats.Retransmissions++
	s.obsRetx.Inc()
	el := s.eligible()
	if len(el) == 0 {
		if s.allDead() {
			s.fail("all paths dead")
			return
		}
		s.parked[seq] = true
		if s.drv.Trace != nil {
			s.tracef("park seq=%d", seq)
		}
		return
	}
	s.transmit(seq, s.strat.Pick(el), true)
}

// demote moves an active path to probation and starts probing it.
func (s *Sender) demote(p *Path) {
	p.State = PathProbation
	p.Demotions++
	p.LastDemoteAt = s.now()
	p.probes = 0
	s.stats.Demotions++
	s.obsDemote.Inc()
	if s.drv.Trace != nil {
		s.tracef("demote path=%d", p.Index)
	}
	s.armProbe(p)
}

func (s *Sender) armProbe(p *Path) {
	p.probeGen++
	gen := p.probeGen
	p.probeTimer = s.drv.Clock.After(s.cfg.ProbeEvery, func() { s.probe(p, gen) })
}

// probe sends a duplicate copy of the lowest unacknowledged segment
// over a probation path. The receiver deduplicates, so the probe's only
// effect is the ACK whose path echo proves the route delivers again.
// MaxProbes unanswered probes declare the path dead.
func (s *Sender) probe(p *Path, gen uint32) {
	if p.probeGen != gen {
		return
	}
	p.probeTimer = nil
	if s.failed || s.Done() || p.State != PathProbation {
		return
	}
	defer s.doFlush()
	if p.probes >= s.cfg.MaxProbes {
		p.State = PathDead
		if s.drv.Trace != nil {
			s.tracef("dead path=%d", p.Index)
		}
		if s.allDead() {
			s.fail("all paths dead")
		}
		return
	}
	p.probes++
	p.Probes++
	s.stats.Probes++
	s.obsProbe.Inc()
	seq := s.acked
	if int(seq) >= len(s.segments) {
		return
	}
	if err := s.drv.Xmit(p, seq); err != nil {
		s.fail("serialize: " + err.Error())
		return
	}
	s.stats.Sent++
	p.Sent++
	s.obsSent.Inc()
	if p.Index < len(s.obsPathSent) {
		s.obsPathSent[p.Index].Inc()
	}
	if s.drv.Trace != nil {
		s.tracef("probe seq=%d path=%d n=%d", seq, p.Index, p.probes)
	}
	s.armProbe(p)
}

// promote returns a probation (or dead) path to the active set and
// restarts striping onto it.
func (s *Sender) promote(p *Path) {
	cancelTimer(p.probeTimer)
	p.probeTimer = nil
	p.probeGen++
	p.State = PathActive
	p.Consec = 0
	p.probes = 0
	p.Promotions++
	p.LastPromoteAt = s.now()
	s.stats.Promotions++
	s.obsPromote.Inc()
	if s.drv.Trace != nil {
		s.tracef("promote path=%d", p.Index)
	}
	s.pump()
}

// credit records path-level evidence of delivery from an ACK echo.
func (s *Sender) credit(p *Path) {
	p.Consec = 0
	p.Loss *= 0.75
	if p.State != PathActive {
		s.promote(p)
	}
}

// HandleAck consumes ACKs for our connection; returns false for
// unrelated traffic. It is the driver senders' ingress (the wire
// engine's read loop calls it under the sender lock); on the netsim
// substrate Start wires it to the node's delivery hook. Hostile input
// is tolerated: a cumulative ACK beyond the stream, an out-of-range
// path echo, or a replayed sequence number cannot poison the
// estimators or panic (FuzzMultipathAck pins this).
func (s *Sender) HandleAck(data []byte) bool {
	tip := &s.ackTip
	if err := tip.DecodeReuse(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return false
	}
	ttp := &s.ackTTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
		return false
	}
	if ttp.Flags&packet.FlagACK == 0 || ttp.DstPort != s.src {
		return false
	}
	if s.failed {
		return true
	}
	defer s.doFlush()
	if s.drv.Trace != nil {
		s.tracef("ack cum=%d echo=%d", ttp.Ack, ttp.Window)
	}
	if echo := int(ttp.Window); echo >= 1 && echo <= len(s.paths) {
		s.credit(s.paths[echo-1])
		if s.failed {
			return true
		}
	}
	if ttp.Ack > uint32(len(s.segments)) {
		return true // forged cumulative ACK beyond the stream: ignore
	}
	now := s.now()
	switch {
	case ttp.Ack > s.acked:
		for seq := s.acked; seq < ttp.Ack; seq++ {
			if fl, ok := s.inflight[seq]; ok {
				cancelTimer(fl.timer)
				p := s.paths[fl.path]
				p.Acked++
				p.AckedBytes += len(s.segments[seq])
				if fl.path < len(s.obsPathAcked) {
					s.obsPathAcked[fl.path].Inc()
				}
				if !fl.retx {
					s.rttSample(p, now-fl.sentAt)
				}
				delete(s.inflight, seq)
			}
			delete(s.parked, seq)
		}
		s.acked = ttp.Ack
		s.dupAcks = 0
		if s.Done() {
			s.finish()
			return true
		}
		s.pump()
	case ttp.Ack == s.acked && !s.Done():
		// Duplicate cumulative ACK: an out-of-order segment arrived, so
		// the window's head is likely lost. Three duplicates trigger one
		// fast retransmission per window (no backoff charge — this is
		// recovery, not congestion evidence).
		s.dupAcks++
		if s.dupAcks == 3 {
			el := s.eligible()
			if len(el) > 0 {
				if fl, ok := s.inflight[s.acked]; ok {
					cancelTimer(fl.timer)
					s.stats.Retransmissions++
					s.obsRetx.Inc()
					if s.drv.Trace != nil {
						s.tracef("fast-retx seq=%d", s.acked)
					}
					s.transmit(s.acked, s.strat.Pick(el), true)
					_ = fl
				} else if s.parked[s.acked] {
					delete(s.parked, s.acked)
					s.stats.Retransmissions++
					s.obsRetx.Inc()
					if s.drv.Trace != nil {
						s.tracef("fast-retx seq=%d", s.acked)
					}
					s.transmit(s.acked, s.strat.Pick(el), true)
				}
			}
		}
	}
	return true
}

// rttSample folds an unambiguous RTT measurement into a path's
// Jacobson estimators.
func (s *Sender) rttSample(p *Path, sample sim.Time) {
	if sample <= 0 {
		return
	}
	if p.SRTT == 0 {
		p.SRTT = sample
		p.RTTVar = sample / 2
		return
	}
	diff := p.SRTT - sample
	if diff < 0 {
		diff = -diff
	}
	p.RTTVar = (3*p.RTTVar + diff) / 4
	p.SRTT = (7*p.SRTT + sample) / 8
}

// finish closes out a completed transfer: record the duration and
// cancel every outstanding timer so the transfer stops occupying
// scheduler slots.
func (s *Sender) finish() {
	s.stats.Elapsed = s.now() - s.started
	if s.drv.Trace != nil {
		s.tracef("done sent=%d retx=%d", s.stats.Sent, s.stats.Retransmissions)
	}
	s.cancelAll()
	if s.drv.OnDone != nil {
		s.drv.OnDone()
	}
}

// fail records the first terminal failure and cancels all timers.
func (s *Sender) fail(reason string) {
	if s.failed {
		return
	}
	s.failed = true
	s.failReason = reason
	s.stats.Elapsed = s.now() - s.started
	s.obsGiveup.Inc()
	if s.drv.Trace != nil {
		s.tracef("fail reason=%q", reason)
	}
	s.cancelAll()
	if s.drv.OnDone != nil {
		s.drv.OnDone()
	}
}

func (s *Sender) cancelAll() {
	for seq, fl := range s.inflight {
		cancelTimer(fl.timer)
		delete(s.inflight, seq)
	}
	for seq := range s.parked {
		delete(s.parked, seq)
	}
	for _, p := range s.paths {
		cancelTimer(p.probeTimer)
		p.probeTimer = nil
		p.probeGen++
	}
}

// Receiver reassembles a striped stream and acknowledges every data
// segment with the cumulative next-expected sequence number, echoing
// the carrying path's ID and source-routing the ACK back along the
// reverse of the arrival route (so the ACK exercises the same path).
type Receiver struct {
	// Port is the listening TTP port.
	Port uint16
	// Data accumulates the in-order stream.
	Data []byte
	// Acks counts acknowledgments sent; Dups counts redundant data
	// segments (stripe overlap, probation probes, spurious
	// retransmissions) — duplicates are acknowledged but never
	// re-delivered.
	Acks, Dups int
	// PathSegments counts accepted (non-duplicate) segments by on-wire
	// path ID (1-based; 0 = unlabeled sender).
	PathSegments map[int]int

	next uint32
	buf  map[uint32][]byte
	net  *netsim.Network
	node topology.NodeID
	addr packet.Addr
}

// NewReceiverCore creates a detached reassembly core for port: no
// network hookup, no ACK serialization. The wire engine feeds it
// decoded segments through Accept and builds its own ACK datagrams
// from the returned cumulative sequence number.
func NewReceiverCore(port uint16) *Receiver {
	return &Receiver{Port: port, buf: map[uint32][]byte{}, PathSegments: map[int]int{}}
}

// InstallReceiver attaches a multipath receiver for port at node id,
// chaining any existing delivery handler for other traffic.
func InstallReceiver(net *netsim.Network, id topology.NodeID, port uint16) *Receiver {
	r := NewReceiverCore(port)
	r.net, r.node, r.addr = net, id, packet.MakeAddr(uint16(id), 1)
	nd := net.Node(id)
	prev := nd.Deliver
	nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
		if !r.handle(data) && prev != nil {
			prev(n, tr, data)
		}
	}
	return r
}

// Accept ingests one data segment (sequence number, payload, 1-based
// path echo) and returns the cumulative ACK to send: the next expected
// sequence number. The in-order fast path appends straight to Data
// without an intermediate copy, so a steady in-order stream allocates
// only for Data growth.
func (r *Receiver) Accept(seq uint32, payload []byte, echo int) uint32 {
	switch {
	case seq == r.next:
		r.Data = append(r.Data, payload...)
		r.next++
		r.PathSegments[echo]++
	case seq > r.next && r.buf[seq] == nil:
		p := make([]byte, len(payload))
		copy(p, payload)
		r.buf[seq] = p
		r.PathSegments[echo]++
	default:
		r.Dups++
	}
	for r.buf[r.next] != nil {
		r.Data = append(r.Data, r.buf[r.next]...)
		delete(r.buf, r.next)
		r.next++
	}
	return r.next
}

// handle consumes data segments for our port; returns false for
// unrelated traffic.
func (r *Receiver) handle(data []byte) bool {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return false
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil || ttp.DstPort != r.Port {
		return false
	}
	if ttp.Flags&packet.FlagACK != 0 {
		return false // ACKs are for senders
	}
	ackNo := r.Accept(ttp.Seq, ttp.LayerPayload(), int(ttp.Window))
	ack, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: r.addr, Dst: tip.Src,
			SourceRoute: ReverseRoute(tip.SourceRoute)},
		&packet.TTP{SrcPort: r.Port, DstPort: ttp.SrcPort, Ack: ackNo,
			Flags: packet.FlagACK, Window: ttp.Window, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: nil})
	if err == nil {
		r.Acks++
		r.net.Send(r.node, ack)
	}
	return true
}

// ReverseRoute builds the ACK's source route: the data segment's
// waypoints in reverse. Nil in, nil out.
func ReverseRoute(sr *packet.SourceRouteOption) *packet.SourceRouteOption {
	if sr == nil || len(sr.Hops) == 0 {
		return nil
	}
	hops := make([]packet.Addr, len(sr.Hops))
	for i, h := range sr.Hops {
		hops[len(hops)-1-i] = h
	}
	return &packet.SourceRouteOption{Hops: hops}
}

// Transfer is the convenience wrapper: set up receiver and sender with
// the given strategy, run the scheduler until quiescent, and return
// both sides' outcomes.
func Transfer(net *netsim.Network, strat Strategy, from, to topology.NodeID, port uint16, data []byte, cfg Config) (Stats, *Receiver) {
	r := InstallReceiver(net, to, port)
	s := NewSender(net, strat, from, to, port, data, cfg)
	s.Start()
	net.Sched.Run()
	return s.Stats(), r
}

// Fairness is Jain's fairness index over the per-path acknowledged
// bytes of the supplied paths (1 = perfectly even, 1/n = one path
// carried everything). Paths with no acknowledged traffic still count.
func Fairness(paths []Path) float64 {
	if len(paths) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, p := range paths {
		b := float64(p.AckedBytes)
		sum += b
		sumsq += b * b
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(paths)) * sumsq)
}

// SortPathsByIndex orders a Paths() snapshot by index (defensive: the
// snapshot is already ordered; kept for callers that filter).
func SortPathsByIndex(paths []Path) {
	sort.Slice(paths, func(i, j int) bool { return paths[i].Index < paths[j].Index })
}
