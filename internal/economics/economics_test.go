package economics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// mkConsumers builds n homogeneous consumers.
func mkConsumers(n int, wtp, switchCost float64) []*Consumer {
	out := make([]*Consumer, n)
	for i := range out {
		out[i] = &Consumer{ID: i, WTP: wtp, SwitchCost: switchCost}
	}
	return out
}

func TestMonopolyRaisesPricesCompetitionDisciplines(t *testing.T) {
	run := func(nProviders int) float64 {
		rng := sim.NewRNG(1)
		var providers []*Provider
		for i := 0; i < nProviders; i++ {
			providers = append(providers, &Provider{
				Name: "isp", Cost: 2,
				Offer: Offer{Price: 5, AllowsServers: true, AllowsEncryption: true},
				Strat: func() Strategy {
					if nProviders == 1 {
						return &GreedPricing{}
					}
					return CompetitivePricing{Step: 0.25, Floor: 0.25}
				}(),
			})
		}
		m := NewMarket(rng, providers, mkConsumers(100, 20, 0.5))
		m.Run(100)
		return m.MeanPrice()
	}
	mono := run(1)
	comp := run(4)
	if mono <= comp {
		t.Fatalf("monopoly price %v should exceed competitive price %v", mono, comp)
	}
	if comp > 5 {
		t.Fatalf("competition failed to discipline price: %v", comp)
	}
}

func TestSwitchingCostProtectsIncumbent(t *testing.T) {
	// Two providers: the incumbent is expensive, the entrant cheap.
	// With high switching costs (hard renumbering), consumers stay.
	run := func(switchCost float64) int {
		rng := sim.NewRNG(2)
		incumbent := &Provider{Name: "incumbent", Cost: 2, Offer: Offer{Price: 10, AllowsServers: true, AllowsEncryption: true}, Strat: StaticPricing{}}
		entrant := &Provider{Name: "entrant", Cost: 2, Offer: Offer{Price: 6, AllowsServers: true, AllowsEncryption: true}, Strat: StaticPricing{}}
		consumers := mkConsumers(100, 20, switchCost)
		m := NewMarket(rng, []*Provider{incumbent, entrant}, consumers)
		// Round 1: everyone picks the entrant (cheaper) — so seed them
		// on the incumbent first by making it briefly cheapest.
		incumbent.Offer.Price = 5
		m.Step()
		incumbent.Offer.Price = 10
		m.Run(10)
		return m.Switches
	}
	lockedIn := run(8)   // renumbering is painful
	freeToMove := run(1) // DHCP + dynamic DNS
	if lockedIn >= freeToMove {
		t.Fatalf("switches: locked-in %d should be < free %d", lockedIn, freeToMove)
	}
	if freeToMove < 90 {
		t.Fatalf("cheap switching should free nearly all consumers, got %d", freeToMove)
	}
}

func TestValuePricingTunnelEvasion(t *testing.T) {
	// A provider bans servers (value pricing). Consumers who can tunnel
	// evade; those who cannot pay the surcharge.
	rng := sim.NewRNG(3)
	isp := &Provider{Name: "isp", Cost: 1, Offer: Offer{Price: 5, AllowsServers: false, ServerSurcharge: 3, AllowsEncryption: true}, Strat: StaticPricing{}}
	consumers := mkConsumers(50, 20, 1)
	for i, c := range consumers {
		c.RunsServer = true
		c.CanTunnel = i < 25 // half are savvy
	}
	m := NewMarket(rng, []*Provider{isp}, consumers)
	m.Run(4)
	if m.Tunnels == 0 {
		t.Fatal("no tunneling despite a server ban")
	}
	// Tunnelers don't pay the surcharge — provider revenue is lower
	// than if no one could tunnel.
	rng2 := sim.NewRNG(3)
	isp2 := &Provider{Name: "isp", Cost: 1, Offer: isp.Offer, Strat: StaticPricing{}}
	consumers2 := mkConsumers(50, 20, 1)
	for _, c := range consumers2 {
		c.RunsServer = true
	}
	m2 := NewMarket(rng2, []*Provider{isp2}, consumers2)
	m2.Run(4)
	if isp.Revenue >= isp2.Revenue {
		t.Fatalf("tunneling should cut revenue: %v vs %v", isp.Revenue, isp2.Revenue)
	}
}

func TestUnservedWhenPriceExceedsWTP(t *testing.T) {
	rng := sim.NewRNG(4)
	isp := &Provider{Name: "isp", Cost: 1, Offer: Offer{Price: 50}, Strat: StaticPricing{}}
	m := NewMarket(rng, []*Provider{isp}, mkConsumers(10, 20, 1))
	m.Run(3)
	if m.Unserved != 30 {
		t.Fatalf("unserved = %d, want 30", m.Unserved)
	}
	if isp.Subscribers != 0 {
		t.Fatal("overpriced provider kept subscribers")
	}
}

func TestProviderExitAfterLosses(t *testing.T) {
	rng := sim.NewRNG(5)
	loser := &Provider{Name: "loser", Cost: 1, FixedCost: 10, Offer: Offer{Price: 100}, Strat: StaticPricing{}}
	m := NewMarket(rng, []*Provider{loser}, mkConsumers(5, 10, 1))
	m.Run(20)
	if loser.Alive {
		t.Fatal("unprofitable empty provider should exit")
	}
	if m.AliveProviders() != 0 {
		t.Fatal("AliveProviders wrong")
	}
}

func TestHHI(t *testing.T) {
	rng := sim.NewRNG(6)
	a := &Provider{Name: "a", Cost: 1, Offer: Offer{Price: 5}, Strat: StaticPricing{}}
	b := &Provider{Name: "b", Cost: 1, Offer: Offer{Price: 5}, Strat: StaticPricing{}}
	m := NewMarket(rng, []*Provider{a, b}, mkConsumers(10, 20, 1))
	m.Run(2)
	h := m.HHI()
	if h < 0.49 || h > 1.01 {
		t.Fatalf("HHI = %v", h)
	}
	// Monopoly HHI = 1.
	m2 := NewMarket(sim.NewRNG(6), []*Provider{{Name: "solo", Cost: 1, Offer: Offer{Price: 5}, Strat: StaticPricing{}, Alive: true}}, mkConsumers(10, 20, 1))
	m2.Run(2)
	if m2.HHI() != 1 {
		t.Fatalf("monopoly HHI = %v", m2.HHI())
	}
}

func TestQoSRevenue(t *testing.T) {
	rng := sim.NewRNG(7)
	with := &Provider{Name: "qos", Cost: 1, Offer: Offer{Price: 5, QoS: true, QoSPrice: 2}, Strat: StaticPricing{}}
	consumers := mkConsumers(20, 20, 1)
	for _, c := range consumers {
		c.WantsQoS = true
	}
	m := NewMarket(rng, []*Provider{with}, consumers)
	m.Run(1)
	// Revenue = 20*(5 + 2).
	if math.Abs(with.Revenue-140) > 1e-9 {
		t.Fatalf("revenue = %v, want 140", with.Revenue)
	}
}

func TestConsumerSurplusNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		providers := []*Provider{
			{Name: "a", Cost: 1, Offer: Offer{Price: rng.Range(1, 30)}, Strat: StaticPricing{}},
			{Name: "b", Cost: 1, Offer: Offer{Price: rng.Range(1, 30)}, Strat: CompetitivePricing{}},
		}
		consumers := mkConsumers(30, rng.Range(5, 25), rng.Range(0, 5))
		m := NewMarket(rng, providers, consumers)
		m.Run(20)
		return m.ConsumerSurplus() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompetitivePricingStaysAboveCost(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		providers := []*Provider{
			{Name: "a", Cost: 2, Offer: Offer{Price: rng.Range(3, 20)}, Strat: CompetitivePricing{Step: 0.25, Floor: 0.1}},
			{Name: "b", Cost: 2, Offer: Offer{Price: rng.Range(3, 20)}, Strat: CompetitivePricing{Step: 0.25, Floor: 0.1}},
		}
		m := NewMarket(rng, providers, mkConsumers(40, 25, 0.5))
		m.Run(50)
		for _, p := range providers {
			if p.Offer.Price < p.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerTransfersAndConservation(t *testing.T) {
	l := NewLedger(map[string]float64{"alice": 100, "isp": 0})
	if err := l.Transfer("alice", "isp", 30, "monthly service"); err != nil {
		t.Fatal(err)
	}
	if l.Balance("alice") != 70 || l.Balance("isp") != 30 {
		t.Fatalf("balances = %v/%v", l.Balance("alice"), l.Balance("isp"))
	}
	if !l.Conserved() {
		t.Fatal("conservation broken")
	}
	if len(l.Entries) != 1 || l.Entries[0].Memo != "monthly service" {
		t.Fatalf("audit trail = %+v", l.Entries)
	}
}

func TestLedgerRejectsOverdraftAndNegative(t *testing.T) {
	l := NewLedger(map[string]float64{"a": 10})
	if err := l.Transfer("a", "b", 20, ""); err == nil {
		t.Fatal("overdraft allowed")
	}
	if err := l.Transfer("a", "b", -5, ""); err == nil {
		t.Fatal("negative transfer allowed")
	}
	if !l.Conserved() {
		t.Fatal("failed transfers changed balances")
	}
}

func TestLedgerConservationQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		l := NewLedger(map[string]float64{"a": 100, "b": 100, "c": 100})
		names := []string{"a", "b", "c"}
		for i := 0; i < 50; i++ {
			from := names[rng.Intn(3)]
			to := names[rng.Intn(3)]
			_ = l.Transfer(from, to, rng.Range(0, 50), "x")
		}
		return l.Conserved()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMicropaymentBreakeven(t *testing.T) {
	card := FeeSchedule{Name: "credit-card", Fixed: 0.30, Rate: 0.03}
	breakeven := card.MicropaymentViability()
	if breakeven < 0.30 || breakeven > 0.32 {
		t.Fatalf("breakeven = %v", breakeven)
	}
	// A 1-cent payment delivers nothing net of fees.
	if net := card.NetDelivered(100, 0.01); net != 0 {
		t.Fatalf("micropayments net = %v, want 0", net)
	}
	// A $100 payment is fine.
	if net := card.NetDelivered(1, 100); net <= 95 {
		t.Fatalf("large payment net = %v", net)
	}
	// An aggregator bundling 1000 micropayments into one charge wins.
	aggregated := card.NetDelivered(1, 10) // 1000 * $0.01 bundled
	direct := card.NetDelivered(1000, 0.01)
	if aggregated <= direct {
		t.Fatal("aggregation should beat per-transaction micropayments")
	}
}

func TestGreedPricingRatchetsWithoutCompetition(t *testing.T) {
	rng := sim.NewRNG(8)
	mono := &Provider{Name: "mono", Cost: 1, Offer: Offer{Price: 3}, Strat: &GreedPricing{Step: 0.5}}
	m := NewMarket(rng, []*Provider{mono}, mkConsumers(10, 50, 1))
	m.Run(30)
	if mono.Offer.Price <= 10 {
		t.Fatalf("monopolist price = %v, should ratchet upward", mono.Offer.Price)
	}
}

func TestAdaptivePricingBothModes(t *testing.T) {
	// Locked-in consumers: adaptive pricing ratchets upward.
	rng := sim.NewRNG(9)
	locked := &Provider{Name: "a", Cost: 2, Offer: Offer{Price: 5}, Strat: &AdaptivePricing{Step: 0.25}}
	rival := &Provider{Name: "b", Cost: 2, Offer: Offer{Price: 5}, Strat: StaticPricing{}}
	consumers := mkConsumers(50, 30, 100) // effectively immobile
	m := NewMarket(rng, []*Provider{locked, rival}, consumers)
	for _, c := range consumers {
		c.Provider = 0
	}
	m.Run(40)
	if locked.Offer.Price <= 10 {
		t.Fatalf("locked-in adaptive price = %v, should ratchet", locked.Offer.Price)
	}
	// Mobile consumers with heterogeneous switching costs: subscribers
	// bleed away gradually as the price probes upward, and the fear
	// response chases the rival down.
	rng2 := sim.NewRNG(9)
	fearful := &Provider{Name: "a", Cost: 2, Offer: Offer{Price: 6}, Strat: &AdaptivePricing{Step: 0.25}}
	cheap := &Provider{Name: "b", Cost: 2, Offer: Offer{Price: 5}, Strat: StaticPricing{}}
	consumers2 := mkConsumers(50, 30, 0.5)
	for i, c := range consumers2 {
		c.Provider = 0
		c.SwitchCost = 1 + float64(i)*0.25
	}
	m2 := NewMarket(rng2, []*Provider{fearful, cheap}, consumers2)
	for _, c := range consumers2 {
		c.Provider = 0
	}
	m2.Run(60)
	if fearful.Offer.Price >= 6 {
		t.Fatalf("mobile-market adaptive price = %v, should chase the rival down", fearful.Offer.Price)
	}
}

func TestStrategyNames(t *testing.T) {
	if (StaticPricing{}).Name() != "static" {
		t.Fatal("static name")
	}
	if (CompetitivePricing{}).Name() != "competitive" {
		t.Fatal("competitive name")
	}
	if (&GreedPricing{}).Name() != "greed" {
		t.Fatal("greed name")
	}
	if (&AdaptivePricing{}).Name() != "adaptive" {
		t.Fatal("adaptive name")
	}
}

func TestProducerProfitAggregates(t *testing.T) {
	rng := sim.NewRNG(10)
	a := &Provider{Name: "a", Cost: 1, Offer: Offer{Price: 5}, Strat: StaticPricing{}}
	m := NewMarket(rng, []*Provider{a}, mkConsumers(10, 20, 1))
	m.Run(2)
	if m.ProducerProfit() != a.Profit {
		t.Fatalf("ProducerProfit = %v, provider profit %v", m.ProducerProfit(), a.Profit)
	}
	if m.ProducerProfit() <= 0 {
		t.Fatal("profitable provider shows no profit")
	}
}

func TestMicropaymentDegenerateFee(t *testing.T) {
	confiscatory := FeeSchedule{Name: "bad", Fixed: 1, Rate: 1.0}
	if v := confiscatory.MicropaymentViability(); v < 1e300 {
		t.Fatalf("rate>=1 viability = %v, want effectively infinite", v)
	}
}

func TestConsumerValueEncryptionWithoutTunnel(t *testing.T) {
	// A consumer who wants encryption, on a blocking provider, without
	// tunneling skill: no premium, no distortion.
	c := &Consumer{WTP: 10, WantsEncryption: true}
	v, tun := c.valueOf(Offer{Price: 4, AllowsEncryption: false})
	if v != 6 || tun {
		t.Fatalf("value = %v tunneling = %v", v, tun)
	}
	// QoS priced above its premium adds nothing.
	c2 := &Consumer{WTP: 10, WantsQoS: true}
	v2, _ := c2.valueOf(Offer{Price: 4, QoS: true, QoSPrice: QoSPremium + 1})
	if v2 != 6 {
		t.Fatalf("overpriced QoS value = %v", v2)
	}
}
