package packet

import "fmt"

// Addr is a 32-bit TIP address. The top 16 bits are the provider number
// and the low 16 bits the host number — addresses are provider-rooted by
// construction, which is precisely the lock-in mechanism §V-A1 of the
// paper analyzes: an address "reflects connectivity, not identity", and
// changing providers means renumbering.
type Addr uint32

// MakeAddr builds an address from a provider number and host number.
func MakeAddr(provider, host uint16) Addr {
	return Addr(uint32(provider)<<16 | uint32(host))
}

// Provider returns the provider (prefix) portion of the address.
func (a Addr) Provider() uint16 { return uint16(a >> 16) }

// Host returns the host portion of the address.
func (a Addr) Host() uint16 { return uint16(a & 0xffff) }

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d", a.Provider(), a.Host())
}

// Broadcast is the all-ones address.
const Broadcast Addr = 0xffffffff

// AddrNone is the zero address, meaning "unspecified".
const AddrNone Addr = 0

func putAddr(b []byte, a Addr) {
	b[0] = byte(a >> 24)
	b[1] = byte(a >> 16)
	b[2] = byte(a >> 8)
	b[3] = byte(a)
}

func getAddr(b []byte) Addr {
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v >> 8)
	b[1] = byte(v)
}

func getU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v>>32))
	putU32(b[4:], uint32(v))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b))<<32 | uint64(getU32(b[4:]))
}

// Checksum computes the 16-bit ones'-complement internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
