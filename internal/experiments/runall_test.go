package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// sequentialBaseline runs the registry directly, bypassing RunAll, as the
// ground truth the parallel runner must reproduce byte-for-byte.
func sequentialBaseline(seed uint64) []*Result {
	out := make([]*Result, len(registry))
	for i, e := range registry {
		out[i] = e.Run(seed)
	}
	return out
}

// RunAll must produce results deep-equal to the sequential suite — same
// table order, row order, and cell values — at every parallelism level.
// This is the determinism contract: experiments are pure functions of
// their seed with no shared mutable package state.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism check is slow")
	}
	seeds := []uint64{1, 42, 20260806}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, seed := range seeds {
		want := sequentialBaseline(seed)
		if got := All(seed); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: All diverged from sequential baseline", seed)
		}
		for _, p := range levels {
			got := RunAll(seed, Options{Parallelism: p})
			if len(got) != len(want) {
				t.Fatalf("seed %d parallelism %d: %d results, want %d", seed, p, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("seed %d parallelism %d: experiment %s diverged from sequential run",
						seed, p, want[i].ID)
				}
			}
		}
	}
}

// The registry must stay aligned with the result IDs and index order.
func TestRegistryIDsMatchResults(t *testing.T) {
	for i, e := range List() {
		r := e.Run(42)
		if r == nil || len(r.Rows) == 0 {
			t.Fatalf("registry[%d] (%s) produced no rows", i, e.ID)
		}
		if r.ID != e.ID {
			t.Fatalf("registry[%d] registered as %s but result says %s", i, e.ID, r.ID)
		}
	}
}

// The rendered suite must be byte-identical to the committed golden
// files for the canonical seeds. This pins the full output surface —
// every table cell, finding, and formatting choice across all 26
// experiments — so any refactor of the simulation hot path (netsim's
// forwarding fast path in particular) that changes a single byte of
// behavior fails loudly. Regenerate a golden only for an intentional
// behavior change:
//
//	go run ./cmd/tussle-bench -seed 42 > internal/experiments/testdata/suite_seed42.golden
//	go run ./cmd/tussle-bench -seed 7  > internal/experiments/testdata/suite_seed7.golden
func TestSuiteOutputMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden check is slow")
	}
	for _, tc := range []struct {
		seed   uint64
		golden string
	}{
		{42, "suite_seed42.golden"},
		{7, "suite_seed7.golden"},
	} {
		t.Run(fmt.Sprintf("seed%d", tc.seed), func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, r := range RunAll(tc.seed, Options{Parallelism: 1}) {
				r.Render(&buf)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				got := buf.Bytes()
				// Locate the first divergent byte for a usable failure
				// message instead of dumping 21KB of table.
				n := len(got)
				if len(want) < n {
					n = len(want)
				}
				i := 0
				for i < n && got[i] == want[i] {
					i++
				}
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				hiG, hiW := i+80, i+80
				if hiG > len(got) {
					hiG = len(got)
				}
				if hiW > len(want) {
					hiW = len(want)
				}
				t.Fatalf("seed %d output diverges from %s at byte %d\n got: %q\nwant: %q",
					tc.seed, tc.golden, i, got[lo:hiG], want[lo:hiW])
			}
		})
	}
}

// Parallelism beyond the suite size and the zero (GOMAXPROCS) default
// must both work.
func TestRunAllParallelismEdgeCases(t *testing.T) {
	want := sequentialBaseline(7)
	for _, p := range []int{0, -1, 1000} {
		if got := RunAll(7, Options{Parallelism: p}); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d diverged from sequential baseline", p)
		}
	}
}
