// Package multipath implements reliable multipath transport: a stream
// striped across k user-discovered source routes, with per-path failure
// detection and failover. It is the data-plane half of the paper's
// "design for choice" prescription (§IV-B, §V-A4): where
// internal/transport commits a transfer to whatever path the network's
// routing tussle produces, this sender holds several link-disjoint
// routes at once and reacts to each path's fate independently — a link
// flap, a provider crash, or a partition kills at most the paths that
// cross it, and the stream migrates to the survivors within a few
// retransmission timeouts instead of stalling for the fault's duration.
//
// Per-path machinery, mirroring a real multipath transport in
// miniature:
//
//   - RTO: per-path retransmission timeouts seeded from measured SRTT
//     (Jacobson-style SRTT/RTTVAR from unambiguous ACK samples, Karn's
//     rule on retransmitted segments), exponential backoff with seeded
//     jitter;
//   - loss: an EWMA over timeout/delivery outcomes per path, fed to
//     loss-adaptive scheduling;
//   - demotion: consecutive timeouts demote a path to probation, where
//     it carries no new data;
//   - probation probing: a demoted path is probed with duplicate
//     copies of the lowest unacknowledged segment (harmless to the
//     receiver, which deduplicates) until it answers or exhausts its
//     probe budget and is declared dead;
//   - promotion: an ACK echoing a probation path's ID proves the path
//     delivers again and returns it to the active set.
//
// ACKs echo the path ID that carried the triggering data segment in the
// (otherwise unused) TTP Window field, and the receiver source-routes
// each ACK back along the reverse of the arrival route, so both
// directions of a path are exercised and credited together.
//
// Everything is deterministic: all randomness (jitter) derives from the
// configured seed, all scheduling from the simulation scheduler, so the
// same seed and fault plan reproduce byte-identical stats and metrics.
package multipath

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing/srcroute"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config tunes a multipath transfer.
type Config struct {
	// Paths is the number of concurrent paths to request from the
	// strategy (strategies may select fewer, or more for
	// disjointness-max).
	Paths int
	// MaxPathLen bounds discovered paths in nodes.
	MaxPathLen int
	// Window is the transfer-wide sending window in segments.
	Window int
	// SegmentSize is payload bytes per segment.
	SegmentSize int
	// RTO is the floor retransmission timeout; per-path timeouts use
	// max(RTO, SRTT+4·RTTVAR) once a path has RTT samples.
	RTO sim.Time
	// MaxRetries gives up on the transfer after this many
	// retransmissions of a single segment.
	MaxRetries int
	// Backoff multiplies the timeout per successive retransmission of a
	// segment; MaxRTO caps it; JitterFrac stretches each timeout by a
	// seeded uniform factor in [1, 1+JitterFrac).
	Backoff    float64
	MaxRTO     sim.Time
	JitterFrac float64
	// DemoteAfter is the consecutive-timeout count that demotes a path
	// to probation.
	DemoteAfter int
	// ProbeEvery is the probation probe interval; MaxProbes unanswered
	// probes declare the path dead.
	ProbeEvery sim.Time
	MaxProbes  int
	// Seed drives the jitter RNG (mixed with endpoints, as in
	// transport.Config).
	Seed uint64
	// ContentType declares what the stream carries (TTP.Next).
	ContentType packet.LayerType
}

// DefaultConfig mirrors transport.DefaultConfig with multipath knobs:
// three paths, a demotion trigger fast enough to migrate within two
// RTOs, and probing that revives a healed path in ~150ms.
func DefaultConfig() Config {
	return Config{
		Paths: 3, MaxPathLen: 8, Window: 16, SegmentSize: 512,
		RTO: 60 * sim.Millisecond, MaxRetries: 30,
		Backoff: 2, MaxRTO: sim.Second, JitterFrac: 0.1,
		DemoteAfter: 2, ProbeEvery: 150 * sim.Millisecond, MaxProbes: 12,
		ContentType: packet.LayerTypeRaw,
	}
}

// PathState is a path's position in the demotion state machine.
type PathState uint8

const (
	// PathActive paths carry new data.
	PathActive PathState = iota
	// PathProbation paths carry only probes until one is answered.
	PathProbation
	// PathDead paths exhausted their probe budget.
	PathDead
)

// String renders the state for stats output.
func (st PathState) String() string {
	switch st {
	case PathActive:
		return "active"
	case PathProbation:
		return "probation"
	default:
		return "dead"
	}
}

// Path is one source route's live state. Fields are exported for
// experiments and stats snapshots; they are owned by the sender and
// must not be mutated elsewhere.
type Path struct {
	// Index is the path's position in the sender's set (and its on-wire
	// ID, echoed by ACKs as Index+1).
	Index int
	// Cand is the discovered route.
	Cand srcroute.Candidate
	// State is the demotion state machine's position.
	State PathState
	// SRTT/RTTVar are the Jacobson estimators (zero until the first
	// unambiguous sample).
	SRTT   sim.Time
	RTTVar sim.Time
	// Loss is the EWMA loss estimate: timeouts push it toward 1,
	// acknowledged deliveries decay it toward 0.
	Loss float64
	// Consec counts consecutive timeouts since the last credit.
	Consec int

	// Counters.
	Sent, Acked, Retx, Timeouts, Probes int
	Demotions, Promotions               int
	AckedBytes                          int
	LastDemoteAt, LastPromoteAt         sim.Time

	opt        *packet.SourceRouteOption // prebuilt wire option (nil for direct paths)
	probeTimer sim.EventID
	probes     int // unanswered probes this probation
	wrrCredit  float64
}

// Stats summarizes a transfer.
type Stats struct {
	// Done reports full delivery; Failed reports give-up, with
	// FailReason saying why.
	Done       bool
	Failed     bool
	FailReason string
	// Segments is the stream's segment count; Sent counts transmissions
	// including retransmissions and probes; Retransmissions counts
	// re-sent data segments; Probes counts probation probes.
	Segments, Sent, Retransmissions, Probes int
	// Demotions/Promotions count path state transitions.
	Demotions, Promotions int
	// PathsUsed is the discovered path count.
	PathsUsed int
	// Elapsed is the transfer duration (to completion or failure).
	Elapsed sim.Time
}

// flight is one outstanding segment's transmission state.
type flight struct {
	path    int
	timer   sim.EventID
	sentAt  sim.Time
	retries int
	retx    bool // retransmitted at least once: no RTT sample (Karn)
}

// Sender drives a multipath transfer.
type Sender struct {
	cfg   Config
	strat Strategy
	net   *netsim.Network
	node  topology.NodeID
	addr  packet.Addr
	dst   packet.Addr
	port  uint16
	src   uint16

	paths    []*Path
	segments [][]byte
	acked    uint32
	nextSend uint32
	inflight map[uint32]*flight
	parked   map[uint32]bool // timed out with no active path; waiting on promotion
	dupAcks  int

	stats      Stats
	started    sim.Time
	failed     bool
	failReason string
	rng        *sim.RNG

	// Pre-bound obs handles; nil (zero-cost no-ops) unless AttachObs ran.
	obsSent, obsRetx, obsProbe       *obs.Counter
	obsDemote, obsPromote, obsGiveup *obs.Counter
	obsPathSent, obsPathAcked        []*obs.Counter
}

// NewSender prepares a transfer of data from node src to node dst's
// port, striped across the paths the strategy discovers on the
// network's topology map.
func NewSender(net *netsim.Network, strat Strategy, src, dst topology.NodeID, port uint16, data []byte, cfg Config) *Sender {
	if cfg.Window <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Paths <= 0 {
		cfg.Paths = 3
	}
	if cfg.MaxPathLen <= 0 {
		cfg.MaxPathLen = 8
	}
	if cfg.DemoteAfter <= 0 {
		cfg.DemoteAfter = 2
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 150 * sim.Millisecond
	}
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 12
	}
	s := &Sender{
		cfg: cfg, strat: strat, net: net, node: src,
		addr: packet.MakeAddr(uint16(src), 1), dst: packet.MakeAddr(uint16(dst), 1),
		port: port, src: 41000,
		inflight: map[uint32]*flight{},
		parked:   map[uint32]bool{},
		rng:      sim.NewRNG(cfg.Seed<<20 ^ uint64(src)<<36 ^ uint64(dst)<<8 ^ uint64(port)<<16 ^ 0x6d70617468),
	}
	for _, c := range strat.Discover(net.Graph, src, dst, cfg.Paths, cfg.MaxPathLen) {
		p := &Path{Index: len(s.paths), Cand: c, opt: c.Option()}
		s.paths = append(s.paths, p)
	}
	for off := 0; off < len(data); off += cfg.SegmentSize {
		end := off + cfg.SegmentSize
		if end > len(data) {
			end = len(data)
		}
		seg := make([]byte, end-off)
		copy(seg, data[off:end])
		s.segments = append(s.segments, seg)
	}
	s.stats.Segments = len(s.segments)
	s.stats.PathsUsed = len(s.paths)
	return s
}

// AttachObs binds the sender's metrics to a registry: aggregate
// transfer counters plus per-path send/ack counters. Never attached
// (the default), every handle stays nil and the hot paths cost one nil
// check each, mirroring netsim's instrumentation.
func (s *Sender) AttachObs(reg *obs.Registry) {
	s.obsSent = reg.Counter("multipath.sent")
	s.obsRetx = reg.Counter("multipath.retx")
	s.obsProbe = reg.Counter("multipath.probes")
	s.obsDemote = reg.Counter("multipath.demotions")
	s.obsPromote = reg.Counter("multipath.promotions")
	s.obsGiveup = reg.Counter("multipath.giveup")
	s.obsPathSent = make([]*obs.Counter, len(s.paths))
	s.obsPathAcked = make([]*obs.Counter, len(s.paths))
	for i := range s.paths {
		s.obsPathSent[i] = reg.Counter(fmt.Sprintf("multipath.path%d.sent", i))
		s.obsPathAcked[i] = reg.Counter(fmt.Sprintf("multipath.path%d.acked", i))
	}
}

// Start begins the transfer and hooks ACK reception at the sending
// node. A sender with no discovered paths fails immediately.
func (s *Sender) Start() {
	s.started = s.net.Sched.Now()
	if len(s.paths) == 0 {
		s.fail("no paths discovered")
		return
	}
	nd := s.net.Node(s.node)
	prev := nd.Deliver
	nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
		if !s.handleAck(data) && prev != nil {
			prev(n, tr, data)
		}
	}
	s.pump()
}

// Done reports whether every segment is acknowledged.
func (s *Sender) Done() bool { return int(s.acked) >= len(s.segments) }

// Failed reports whether the transfer gave up.
func (s *Sender) Failed() bool { return s.failed }

// Stats returns the transfer summary.
func (s *Sender) Stats() Stats {
	st := s.stats
	st.Done = s.Done()
	st.Failed = s.failed
	st.FailReason = s.failReason
	return st
}

// Paths returns a snapshot of every path's state (copies; safe to
// keep).
func (s *Sender) Paths() []Path {
	out := make([]Path, len(s.paths))
	for i, p := range s.paths {
		out[i] = *p
	}
	return out
}

func (s *Sender) contentType() packet.LayerType {
	if s.cfg.ContentType == packet.LayerTypeNone {
		return packet.LayerTypeRaw
	}
	return s.cfg.ContentType
}

// eligible returns the active paths in index order.
func (s *Sender) eligible() []*Path {
	var out []*Path
	for _, p := range s.paths {
		if p.State == PathActive {
			out = append(out, p)
		}
	}
	return out
}

func (s *Sender) allDead() bool {
	for _, p := range s.paths {
		if p.State != PathDead {
			return false
		}
	}
	return true
}

// pump dispatches parked retransmissions, then fills the window with
// new segments, as long as an active path exists.
func (s *Sender) pump() {
	if s.failed || s.Done() {
		return
	}
	el := s.eligible()
	if len(el) == 0 {
		return // every path demoted; probes will call back on promotion
	}
	for seq := s.acked; seq < s.nextSend; seq++ {
		if s.parked[seq] {
			delete(s.parked, seq)
			s.transmit(seq, s.strat.Pick(el), true)
		}
	}
	for s.nextSend < uint32(len(s.segments)) && s.nextSend < s.acked+uint32(s.cfg.Window) {
		s.transmit(s.nextSend, s.strat.Pick(el), false)
		s.nextSend++
	}
}

// transmit sends segment seq over path p and arms its timer. retx marks
// a retransmission (counted, and excluded from RTT sampling).
func (s *Sender) transmit(seq uint32, p *Path, retx bool) {
	data, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: s.addr, Dst: s.dst, SourceRoute: p.opt},
		&packet.TTP{SrcPort: s.src, DstPort: s.port, Seq: seq, Window: uint16(p.Index) + 1, Next: s.contentType()},
		&packet.Raw{Data: s.segments[seq]})
	if err != nil {
		s.fail("serialize: " + err.Error())
		return
	}
	fl := s.inflight[seq]
	if fl == nil {
		fl = &flight{}
		s.inflight[seq] = fl
	}
	fl.path = p.Index
	fl.sentAt = s.net.Sched.Now()
	fl.retx = fl.retx || retx
	s.stats.Sent++
	p.Sent++
	s.obsSent.Inc()
	if p.Index < len(s.obsPathSent) {
		s.obsPathSent[p.Index].Inc()
	}
	if retx {
		p.Retx++
	}
	s.net.Send(s.node, data)
	fl.timer = s.net.Sched.After(s.rto(p, fl.retries), func() { s.timeout(seq) })
}

// rto computes a path's timeout for a segment's attempt'th
// retransmission: max(configured floor, SRTT+4·RTTVAR), backed off
// exponentially and stretched by seeded jitter.
func (s *Sender) rto(p *Path, attempt int) sim.Time {
	d := s.cfg.RTO
	if p.SRTT > 0 {
		if est := p.SRTT + 4*p.RTTVar; est > d {
			d = est
		}
	}
	if s.cfg.Backoff > 1 {
		for i := 0; i < attempt; i++ {
			d = sim.Time(float64(d) * s.cfg.Backoff)
			if s.cfg.MaxRTO > 0 && d >= s.cfg.MaxRTO {
				d = s.cfg.MaxRTO
				break
			}
		}
	}
	if s.cfg.JitterFrac > 0 {
		d += sim.Time(s.rng.Float64() * s.cfg.JitterFrac * float64(d))
	}
	return d
}

// timeout handles a segment's retransmission timer: charge the path,
// demote it when it keeps timing out, and re-send the segment over a
// (possibly different) active path — or park it until probing revives
// one.
func (s *Sender) timeout(seq uint32) {
	if s.failed || seq < s.acked {
		return
	}
	fl := s.inflight[seq]
	if fl == nil {
		return
	}
	p := s.paths[fl.path]
	p.Timeouts++
	p.Consec++
	p.Loss = 0.75*p.Loss + 0.25
	if p.State == PathActive && p.Consec >= s.cfg.DemoteAfter {
		s.demote(p)
	}
	fl.retries++
	if fl.retries > s.cfg.MaxRetries {
		s.fail(fmt.Sprintf("segment %d unacknowledged after %d retransmissions", seq, s.cfg.MaxRetries))
		return
	}
	s.stats.Retransmissions++
	s.obsRetx.Inc()
	el := s.eligible()
	if len(el) == 0 {
		if s.allDead() {
			s.fail("all paths dead")
			return
		}
		s.parked[seq] = true
		return
	}
	s.transmit(seq, s.strat.Pick(el), true)
}

// demote moves an active path to probation and starts probing it.
func (s *Sender) demote(p *Path) {
	p.State = PathProbation
	p.Demotions++
	p.LastDemoteAt = s.net.Sched.Now()
	p.probes = 0
	s.stats.Demotions++
	s.obsDemote.Inc()
	s.armProbe(p)
}

func (s *Sender) armProbe(p *Path) {
	p.probeTimer = s.net.Sched.After(s.cfg.ProbeEvery, func() { s.probe(p) })
}

// probe sends a duplicate copy of the lowest unacknowledged segment
// over a probation path. The receiver deduplicates, so the probe's only
// effect is the ACK whose path echo proves the route delivers again.
// MaxProbes unanswered probes declare the path dead.
func (s *Sender) probe(p *Path) {
	p.probeTimer = sim.EventID{}
	if s.failed || s.Done() || p.State != PathProbation {
		return
	}
	if p.probes >= s.cfg.MaxProbes {
		p.State = PathDead
		if s.allDead() {
			s.fail("all paths dead")
		}
		return
	}
	p.probes++
	p.Probes++
	s.stats.Probes++
	s.obsProbe.Inc()
	seq := s.acked
	if int(seq) >= len(s.segments) {
		return
	}
	data, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: s.addr, Dst: s.dst, SourceRoute: p.opt},
		&packet.TTP{SrcPort: s.src, DstPort: s.port, Seq: seq, Window: uint16(p.Index) + 1, Next: s.contentType()},
		&packet.Raw{Data: s.segments[seq]})
	if err != nil {
		s.fail("serialize: " + err.Error())
		return
	}
	s.stats.Sent++
	p.Sent++
	s.obsSent.Inc()
	if p.Index < len(s.obsPathSent) {
		s.obsPathSent[p.Index].Inc()
	}
	s.net.Send(s.node, data)
	s.armProbe(p)
}

// promote returns a probation (or dead) path to the active set and
// restarts striping onto it.
func (s *Sender) promote(p *Path) {
	s.net.Sched.Cancel(p.probeTimer)
	p.probeTimer = sim.EventID{}
	p.State = PathActive
	p.Consec = 0
	p.probes = 0
	p.Promotions++
	p.LastPromoteAt = s.net.Sched.Now()
	s.stats.Promotions++
	s.obsPromote.Inc()
	s.pump()
}

// credit records path-level evidence of delivery from an ACK echo.
func (s *Sender) credit(p *Path) {
	p.Consec = 0
	p.Loss *= 0.75
	if p.State != PathActive {
		s.promote(p)
	}
}

// handleAck consumes ACKs for our connection; returns false for
// unrelated traffic.
func (s *Sender) handleAck(data []byte) bool {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return false
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil {
		return false
	}
	if ttp.Flags&packet.FlagACK == 0 || ttp.DstPort != s.src {
		return false
	}
	if s.failed {
		return true
	}
	if echo := int(ttp.Window); echo >= 1 && echo <= len(s.paths) {
		s.credit(s.paths[echo-1])
		if s.failed {
			return true
		}
	}
	now := s.net.Sched.Now()
	switch {
	case ttp.Ack > s.acked:
		for seq := s.acked; seq < ttp.Ack; seq++ {
			if fl, ok := s.inflight[seq]; ok {
				s.net.Sched.Cancel(fl.timer)
				p := s.paths[fl.path]
				p.Acked++
				p.AckedBytes += len(s.segments[seq])
				if fl.path < len(s.obsPathAcked) {
					s.obsPathAcked[fl.path].Inc()
				}
				if !fl.retx {
					s.rttSample(p, now-fl.sentAt)
				}
				delete(s.inflight, seq)
			}
			delete(s.parked, seq)
		}
		s.acked = ttp.Ack
		s.dupAcks = 0
		if s.Done() {
			s.finish()
			return true
		}
		s.pump()
	case ttp.Ack == s.acked && !s.Done():
		// Duplicate cumulative ACK: an out-of-order segment arrived, so
		// the window's head is likely lost. Three duplicates trigger one
		// fast retransmission per window (no backoff charge — this is
		// recovery, not congestion evidence).
		s.dupAcks++
		if s.dupAcks == 3 {
			el := s.eligible()
			if len(el) > 0 {
				if fl, ok := s.inflight[s.acked]; ok {
					s.net.Sched.Cancel(fl.timer)
					s.stats.Retransmissions++
					s.obsRetx.Inc()
					s.transmit(s.acked, s.strat.Pick(el), true)
					_ = fl
				} else if s.parked[s.acked] {
					delete(s.parked, s.acked)
					s.stats.Retransmissions++
					s.obsRetx.Inc()
					s.transmit(s.acked, s.strat.Pick(el), true)
				}
			}
		}
	}
	return true
}

// rttSample folds an unambiguous RTT measurement into a path's
// Jacobson estimators.
func (s *Sender) rttSample(p *Path, sample sim.Time) {
	if sample <= 0 {
		return
	}
	if p.SRTT == 0 {
		p.SRTT = sample
		p.RTTVar = sample / 2
		return
	}
	diff := p.SRTT - sample
	if diff < 0 {
		diff = -diff
	}
	p.RTTVar = (3*p.RTTVar + diff) / 4
	p.SRTT = (7*p.SRTT + sample) / 8
}

// finish closes out a completed transfer: record the duration and
// cancel every outstanding timer so the transfer stops occupying
// scheduler slots.
func (s *Sender) finish() {
	s.stats.Elapsed = s.net.Sched.Now() - s.started
	s.cancelAll()
}

// fail records the first terminal failure and cancels all timers.
func (s *Sender) fail(reason string) {
	if s.failed {
		return
	}
	s.failed = true
	s.failReason = reason
	s.stats.Elapsed = s.net.Sched.Now() - s.started
	s.obsGiveup.Inc()
	s.cancelAll()
}

func (s *Sender) cancelAll() {
	for seq, fl := range s.inflight {
		s.net.Sched.Cancel(fl.timer)
		delete(s.inflight, seq)
	}
	for seq := range s.parked {
		delete(s.parked, seq)
	}
	for _, p := range s.paths {
		s.net.Sched.Cancel(p.probeTimer)
		p.probeTimer = sim.EventID{}
	}
}

// Receiver reassembles a striped stream and acknowledges every data
// segment with the cumulative next-expected sequence number, echoing
// the carrying path's ID and source-routing the ACK back along the
// reverse of the arrival route (so the ACK exercises the same path).
type Receiver struct {
	// Port is the listening TTP port.
	Port uint16
	// Data accumulates the in-order stream.
	Data []byte
	// Acks counts acknowledgments sent; Dups counts redundant data
	// segments (stripe overlap, probation probes, spurious
	// retransmissions) — duplicates are acknowledged but never
	// re-delivered.
	Acks, Dups int
	// PathSegments counts accepted (non-duplicate) segments by on-wire
	// path ID (1-based; 0 = unlabeled sender).
	PathSegments map[int]int

	next uint32
	buf  map[uint32][]byte
	net  *netsim.Network
	node topology.NodeID
	addr packet.Addr
}

// InstallReceiver attaches a multipath receiver for port at node id,
// chaining any existing delivery handler for other traffic.
func InstallReceiver(net *netsim.Network, id topology.NodeID, port uint16) *Receiver {
	r := &Receiver{
		Port: port, buf: map[uint32][]byte{}, PathSegments: map[int]int{},
		net: net, node: id, addr: packet.MakeAddr(uint16(id), 1),
	}
	nd := net.Node(id)
	prev := nd.Deliver
	nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
		if !r.handle(data) && prev != nil {
			prev(n, tr, data)
		}
	}
	return r
}

// handle consumes data segments for our port; returns false for
// unrelated traffic.
func (r *Receiver) handle(data []byte) bool {
	var tip packet.TIP
	if err := tip.DecodeFrom(data); err != nil || tip.Proto != packet.LayerTypeTTP {
		return false
	}
	var ttp packet.TTP
	if err := ttp.DecodeFrom(tip.LayerPayload()); err != nil || ttp.DstPort != r.Port {
		return false
	}
	if ttp.Flags&packet.FlagACK != 0 {
		return false // ACKs are for senders
	}
	seq := ttp.Seq
	if seq >= r.next && r.buf[seq] == nil {
		payload := make([]byte, len(ttp.LayerPayload()))
		copy(payload, ttp.LayerPayload())
		r.buf[seq] = payload
		r.PathSegments[int(ttp.Window)]++
	} else {
		r.Dups++
	}
	for r.buf[r.next] != nil {
		r.Data = append(r.Data, r.buf[r.next]...)
		delete(r.buf, r.next)
		r.next++
	}
	ack, err := packet.Serialize(
		&packet.TIP{TTL: 32, Proto: packet.LayerTypeTTP, Src: r.addr, Dst: tip.Src,
			SourceRoute: reverseRoute(tip.SourceRoute)},
		&packet.TTP{SrcPort: r.Port, DstPort: ttp.SrcPort, Ack: r.next,
			Flags: packet.FlagACK, Window: ttp.Window, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: nil})
	if err == nil {
		r.Acks++
		r.net.Send(r.node, ack)
	}
	return true
}

// reverseRoute builds the ACK's source route: the data segment's
// waypoints in reverse.
func reverseRoute(sr *packet.SourceRouteOption) *packet.SourceRouteOption {
	if sr == nil || len(sr.Hops) == 0 {
		return nil
	}
	hops := make([]packet.Addr, len(sr.Hops))
	for i, h := range sr.Hops {
		hops[len(hops)-1-i] = h
	}
	return &packet.SourceRouteOption{Hops: hops}
}

// Transfer is the convenience wrapper: set up receiver and sender with
// the given strategy, run the scheduler until quiescent, and return
// both sides' outcomes.
func Transfer(net *netsim.Network, strat Strategy, from, to topology.NodeID, port uint16, data []byte, cfg Config) (Stats, *Receiver) {
	r := InstallReceiver(net, to, port)
	s := NewSender(net, strat, from, to, port, data, cfg)
	s.Start()
	net.Sched.Run()
	return s.Stats(), r
}

// Fairness is Jain's fairness index over the per-path acknowledged
// bytes of the supplied paths (1 = perfectly even, 1/n = one path
// carried everything). Paths with no acknowledged traffic still count.
func Fairness(paths []Path) float64 {
	if len(paths) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, p := range paths {
		b := float64(p.AckedBytes)
		sum += b
		sumsq += b * b
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(paths)) * sumsq)
}

// SortPathsByIndex orders a Paths() snapshot by index (defensive: the
// snapshot is already ordered; kept for callers that filter).
func SortPathsByIndex(paths []Path) {
	sort.Slice(paths, func(i, j int) bool { return paths[i].Index < paths[j].Index })
}
