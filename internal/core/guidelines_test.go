package core

import (
	"strings"
	"testing"
)

// goodMail is a guideline-compliant mail application design.
func goodMail() *AppDesign {
	return &AppDesign{
		Design: Design{
			Name: "mail",
			Choices: []ChoicePoint{
				{Name: "smtp-server", Chooser: User, Alternatives: 8, Visible: true, CostExposed: true},
				{Name: "pop-server", Chooser: User, Alternatives: 4, Visible: true, CostExposed: true},
			},
			Mechanisms: []*Mechanism{
				{Name: "server-selection", Space: "apps", Visible: true},
				{Name: "spam-filtering", Space: "apps", Visible: true},
			},
		},
		UserControlsNetworkFeatures: true,
		ThirdParties: []ThirdParty{
			{Name: "reputation-service", Selectable: true},
		},
		IntermediariesVisible: true,
		EndToEndEncryption:    true,
	}
}

// badTelephony is the §VII failure: QoS bound to the provider's own
// telephony app, no user choice, no payments designed.
func badTelephony() *AppDesign {
	return &AppDesign{
		Design: Design{
			Name: "isp-telephony",
			Choices: []ChoicePoint{
				{Name: "codec", Chooser: ISP, Alternatives: 2, Visible: false, CostExposed: false},
			},
			Mechanisms: []*Mechanism{
				{Name: "qos-for-our-voip-only", Space: "qos", Couples: []Space{"apps", "economics"}},
			},
		},
		ThirdParties:   []ThirdParty{{Name: "the-isp-itself", Selectable: false}},
		NeedsValueFlow: true,
		HasValueFlow:   false,
	}
}

func TestGuidelinesPassGoodDesign(t *testing.T) {
	r := CheckGuidelines(goodMail())
	if r.Score() != 1 {
		for _, f := range r.Findings {
			if !f.Passed {
				t.Errorf("failed rule %s: %s", f.Rule, f.Detail)
			}
		}
		t.Fatalf("score = %v", r.Score())
	}
	if len(r.Findings) != 9 {
		t.Fatalf("rules = %d", len(r.Findings))
	}
}

func TestGuidelinesFailBadDesign(t *testing.T) {
	r := CheckGuidelines(badTelephony())
	if r.Score() > 0.2 {
		t.Fatalf("bad design scored %v", r.Score())
	}
	failed := map[string]bool{}
	for _, f := range r.Findings {
		if !f.Passed {
			failed[f.Rule] = true
		}
	}
	for _, rule := range []string{
		"user-choice", "tussle-isolation", "user-controls-features",
		"third-party-selection", "visible-intermediaries",
		"e2e-encryption", "value-flow",
	} {
		if !failed[rule] {
			t.Errorf("rule %s should fail for the bad design", rule)
		}
	}
}

func TestGuidelinesValueFlowOnlyWhenNeeded(t *testing.T) {
	app := goodMail()
	app.NeedsValueFlow = false
	app.HasValueFlow = false
	r := CheckGuidelines(app)
	for _, f := range r.Findings {
		if f.Rule == "value-flow" && !f.Passed {
			t.Fatal("value-flow should pass when no value flow is needed")
		}
	}
	app.NeedsValueFlow = true
	r = CheckGuidelines(app)
	for _, f := range r.Findings {
		if f.Rule == "value-flow" && f.Passed {
			t.Fatal("value-flow should fail when needed but undesigned")
		}
	}
	app.HasValueFlow = true
	r = CheckGuidelines(app)
	if r.Score() != 1 {
		t.Fatal("designed value flow should pass")
	}
}

func TestGuidelineDetailsCiteSections(t *testing.T) {
	r := CheckGuidelines(badTelephony())
	for _, f := range r.Findings {
		if !strings.Contains(f.Detail, "§") {
			t.Errorf("rule %s detail lacks a section anchor: %q", f.Rule, f.Detail)
		}
	}
}

func TestGuidelinesEmptyDesign(t *testing.T) {
	r := CheckGuidelines(&AppDesign{Design: Design{Name: "empty"}})
	// An empty design fails user-choice but trivially passes isolation;
	// the audit must not panic and must return all rules.
	if len(r.Findings) != 9 {
		t.Fatalf("rules = %d", len(r.Findings))
	}
	if r.Passed() == 0 || r.Passed() == len(r.Findings) {
		t.Fatalf("empty design passed %d/%d — expected a mix", r.Passed(), len(r.Findings))
	}
}
