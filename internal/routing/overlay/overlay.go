// Package overlay implements a RON-style resilient overlay network: a set
// of member nodes that tunnel traffic through each other to obtain paths
// the underlay will not provide — whether because of failures, or because
// providers restrict routing. §V-A4 of the paper: "researchers propose
// even more indirect ways of getting around provider-selected routing,
// such as exploiting hosts as intermediate forwarding agents. (This kind
// of overlay network is a tool in the tussle, certainly.)"
//
// The economic distortion the paper points out — overlay relaying makes a
// provider carry traffic it was never compensated to carry — is measured
// by counting relayed bytes that cross providers outside their business
// relationships; see UncompensatedTransit.
package overlay

import (
	"container/heap"
	"math"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Mesh is an overlay over a set of member nodes.
type Mesh struct {
	Members []topology.NodeID
	// lat[a][b] is the measured underlay latency a→b; absence means the
	// underlay path is unusable (blocked or failed).
	lat map[topology.NodeID]map[topology.NodeID]sim.Time
	// RelayedBytes counts bytes forwarded on behalf of other members.
	RelayedBytes int
}

// NewMesh creates an overlay with the given members and no measurements.
func NewMesh(members []topology.NodeID) *Mesh {
	m := &Mesh{Members: members, lat: make(map[topology.NodeID]map[topology.NodeID]sim.Time)}
	return m
}

// Observe records a latency measurement for the direct underlay path a→b.
func (m *Mesh) Observe(a, b topology.NodeID, l sim.Time) {
	if m.lat[a] == nil {
		m.lat[a] = make(map[topology.NodeID]sim.Time)
	}
	m.lat[a][b] = l
}

// ObserveLoss records that the direct underlay path a→b is unusable.
func (m *Mesh) ObserveLoss(a, b topology.NodeID) {
	if m.lat[a] != nil {
		delete(m.lat[a], b)
	}
}

// Direct returns the measured direct latency, if the path works.
func (m *Mesh) Direct(a, b topology.NodeID) (sim.Time, bool) {
	l, ok := m.lat[a][b]
	return l, ok
}

// Route computes the lowest-latency overlay path src→dst over working
// measured edges (Dijkstra on the overlay graph). The returned slice
// includes src and dst; nil means unreachable even via relays.
func (m *Mesh) Route(src, dst topology.NodeID) []topology.NodeID {
	dist := map[topology.NodeID]float64{src: 0}
	prev := map[topology.NodeID]topology.NodeID{}
	done := map[topology.NodeID]bool{}
	q := &overlayPQ{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(qi2)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		for nb, l := range m.lat[it.node] {
			nd := it.d + l.Seconds()
			cur, seen := dist[nb]
			if !seen {
				cur = math.MaxFloat64
			}
			if nd < cur {
				dist[nb] = nd
				prev[nb] = it.node
				heap.Push(q, qi2{nb, nd})
			}
		}
	}
	if _, ok := dist[dst]; !ok {
		return nil
	}
	var path []topology.NodeID
	for at := dst; ; {
		path = append([]topology.NodeID{at}, path...)
		if at == src {
			break
		}
		at = prev[at]
	}
	return path
}

type qi2 struct {
	node topology.NodeID
	d    float64
}
type overlayPQ []qi2

func (p overlayPQ) Len() int            { return len(p) }
func (p overlayPQ) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p overlayPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *overlayPQ) Push(x interface{}) { *p = append(*p, x.(qi2)) }
func (p *overlayPQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// TunnelID used by overlay encapsulation.
const TunnelID = 0x4f4e // "ON"

// Encapsulate wraps inner packet bytes for relay via hop: the outer
// packet is addressed to the relay, carrying the original as a tunnel
// payload.
func Encapsulate(src, relay packet.Addr, ttl uint8, inner []byte) ([]byte, error) {
	return packet.Serialize(
		&packet.TIP{TTL: ttl, Proto: packet.LayerTypeTunnel, Src: src, Dst: relay},
		&packet.Tunnel{Inner: packet.LayerTypeTIP, ID: TunnelID},
		&packet.Raw{Data: inner})
}

// InstallRelay configures node id to decapsulate overlay tunnels and
// re-inject the inner packet, chaining to fallthrough delivery for
// non-tunnel traffic. It returns the mesh-byte accounting hook.
func (m *Mesh) InstallRelay(net *netsim.Network, id topology.NodeID) {
	nd := net.Node(id)
	inner := nd.Deliver
	nd.Deliver = func(n *netsim.Node, tr *netsim.Trace, data []byte) {
		p := packet.NewPacket(data, packet.LayerTypeTIP)
		tun, _ := p.Layer(packet.LayerTypeTunnel).(*packet.Tunnel)
		if tun == nil || tun.ID != TunnelID {
			if inner != nil {
				inner(n, tr, data)
			}
			return
		}
		payload := tun.LayerPayload()
		m.RelayedBytes += len(payload)
		fresh := make([]byte, len(payload))
		copy(fresh, payload)
		net.Send(id, fresh)
	}
}

// UncompensatedTransit estimates the economic distortion of overlay
// relaying: bytes whose underlay carriage was triggered by a relay member
// rather than by a customer relationship. In this simplified accounting
// every relayed byte is uncompensated (the relay's providers sold it
// access, not transit service for third parties).
func (m *Mesh) UncompensatedTransit() int { return m.RelayedBytes }
