package chaos

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// faultDigest captures a network's complete replicated fault state.
func faultDigest(g *topology.Graph, n *netsim.Network) string {
	out := ""
	for _, id := range g.NodeIDs() {
		if n.NodeFailed(id) {
			out += fmt.Sprintf("node-down %d\n", id)
		}
	}
	for _, l := range g.Links {
		if n.LinkFailed(l.A, l.B) {
			out += fmt.Sprintf("link-down %d-%d\n", l.A, l.B)
		}
	}
	return out
}

func shardedPlan(g *topology.Graph) *Plan {
	l0, l1, l2 := g.Links[0], g.Links[1], g.Links[2]
	return &Plan{Name: "sharded-replay", Events: []Event{
		{AtMs: 5, Kind: LinkDown, A: l0.A, B: l0.B},
		{AtMs: 8, Kind: NodeCrash, Node: g.NodeIDs()[3]},
		{AtMs: 10, Kind: LinkFlap, A: l1.A, B: l1.B, PeriodMs: 4, Count: 5},
		{AtMs: 12, Kind: Partition, Group: g.NodeIDs()[:4]},
		{AtMs: 15, Kind: Impair, A: l2.A, B: l2.B, Corrupt: 0.5},
		{AtMs: 20, Kind: Heal},
		{AtMs: 25, Kind: LinkUp, A: l0.A, B: l0.B},
		{AtMs: 28, Kind: NodeRecover, Node: g.NodeIDs()[3]},
		{AtMs: 30, Kind: ClearImpair, A: l2.A, B: l2.B},
	}}
}

// TestShardedEngineReplayDeterministic replays the same plan at shard
// counts 1, 2, and 4 and checks, at several mid-run checkpoints, that
// (a) every shard within a run agrees on the replicated fault state and
// (b) the state matches the single-shard run byte for byte.
func TestShardedEngineReplayDeterministic(t *testing.T) {
	checkpoints := []sim.Time{
		6 * sim.Millisecond, 11 * sim.Millisecond, 14 * sim.Millisecond,
		18 * sim.Millisecond, 22 * sim.Millisecond, 27 * sim.Millisecond,
		40 * sim.Millisecond,
	}
	var ref []string
	for _, k := range []int{1, 2, 4} {
		g := topology.GenerateScaleFree(40, 2, sim.NewRNG(42))
		s := netsim.NewSharded(g, k)
		e := NewSharded(s, 7)
		if err := e.Schedule(shardedPlan(g)); err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		var got []string
		for _, cp := range checkpoints {
			s.RunUntil(cp)
			d0 := faultDigest(g, s.Shards[0].Net)
			for _, sh := range s.Shards[1:] {
				if d := faultDigest(g, sh.Net); d != d0 {
					t.Fatalf("shards=%d t=%v: shard %d fault state diverged from shard 0:\n%s--\n%s",
						k, cp, sh.ID, d0, d)
				}
			}
			got = append(got, d0)
		}
		if applied := e.Applied()["total"]; applied == 0 {
			t.Fatalf("shards=%d: no events counted", k)
		} else if wantFlap := 5; e.Applied()[string(LinkDown)]+e.Applied()[string(LinkUp)] < wantFlap {
			t.Fatalf("shards=%d: flap toggles undercounted: %v", k, e.Applied())
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range checkpoints {
			if got[i] != ref[i] {
				t.Errorf("shards=%d t=%v: state differs from shards=1:\n-- shards=1:\n%s-- got:\n%s",
					k, checkpoints[i], ref[i], got[i])
			}
		}
	}
}

// TestShardedEngineRejectsBurst: byzantine bursts need a routing
// database no sharded run carries; scheduling one must fail fast.
func TestShardedEngineRejectsBurst(t *testing.T) {
	g := topology.GenerateScaleFree(10, 2, sim.NewRNG(1))
	s := netsim.NewSharded(g, 2)
	e := NewSharded(s, 1)
	err := e.Schedule(&Plan{Name: "burst", Events: []Event{
		{AtMs: 1, Kind: ByzantineBurst, Node: 1, Count: 1, Cost: 1},
	}})
	if err == nil {
		t.Fatal("byzantine burst accepted on sharded engine")
	}
}

// TestShardedEngineValidation: bad topology references fail at schedule
// time, before the run starts.
func TestShardedEngineValidation(t *testing.T) {
	g := topology.GenerateScaleFree(10, 2, sim.NewRNG(1))
	s := netsim.NewSharded(g, 2)
	e := NewSharded(s, 1)
	if err := e.Schedule(&Plan{Name: "bad", Events: []Event{
		{AtMs: 1, Kind: LinkDown, A: 1, B: 9999},
	}}); err == nil {
		t.Fatal("nonexistent link accepted")
	}
}
