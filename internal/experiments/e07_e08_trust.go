package experiments

import (
	"fmt"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trust"
)

// sender is a traffic source for the trust experiments.
type sender struct {
	name     string
	attacker bool
	scheme   uint8
}

// mkTrafficPacket builds one packet from a sender, attackers choosing
// ports to blend in.
func mkTrafficPacket(s sender, port uint16) []byte {
	tip := &packet.TIP{
		TTL: 8, Proto: packet.LayerTypeTTP,
		Src: packet.MakeAddr(1, 1), Dst: packet.MakeAddr(2, 1),
	}
	switch s.scheme {
	case packet.IdentityAnonymous:
		tip.Identity = &packet.IdentityOption{Scheme: packet.IdentityAnonymous}
	case packet.IdentityCertified:
		tip.Identity = &packet.IdentityOption{Scheme: packet.IdentityCertified, ID: []byte(s.name)}
	}
	data, err := packet.Serialize(tip,
		&packet.TTP{DstPort: port, Next: packet.LayerTypeRaw},
		&packet.Raw{Data: []byte("x")})
	if err != nil {
		panic(err)
	}
	return data
}

// E7TrustFirewall tests §V-B: a firewall that mediates on *who* is
// communicating (identity + chosen reputation mediator) dominates a
// port-based filter once attackers stop using distinctive ports: the
// port filter must either over-block (breaking legitimate services) or
// under-block (admitting attacks on allowed ports).
func E7TrustFirewall(seed uint64) *Result {
	res := &Result{
		ID:    "E7",
		Title: "port-based vs trust-aware firewall",
		Claim: "§V-B: firewalls must apply constraints based on who is communicating, not just what protocols are run",
		Columns: []string{
			"attacks-admitted", "legit-blocked", "admitted-total",
		},
	}
	for _, design := range []string{"port-fw", "trust-fw"} {
		for _, attackerFrac := range []float64{0.1, 0.3} {
			rng := sim.NewRNG(seed)
			rep := trust.NewReputation("chosen-mediator", 1.0)
			// Senders: attackers have a bad history, honest senders good.
			var senders []sender
			for i := 0; i < 200; i++ {
				s := sender{name: fmt.Sprintf("s%d", i), attacker: rng.Bool(attackerFrac), scheme: packet.IdentityCertified}
				for k := 0; k < 6; k++ {
					rep.Report(s.name, !s.attacker, nil)
				}
				senders = append(senders, s)
			}
			var fw netsim.Middlebox
			if design == "port-fw" {
				// Allow only well-known service ports.
				blocked := map[uint16]bool{}
				for p := uint16(1024); p < 1124; p++ {
					blocked[p] = true
				}
				fw = &middlebox.PortFirewall{Label: "pfw", BlockedPorts: blocked, BlockInbound: true}
			} else {
				fw = &middlebox.TrustFirewall{Label: "tfw", MinScore: 0.5, Rep: rep}
			}
			attacksAdmitted, legitBlocked, admitted := 0, 0, 0
			for _, s := range senders {
				// Attackers blend in: they use port 80 like everyone
				// else (the paper's arms race, ports carry no intent).
				port := uint16(80)
				if !s.attacker && rng.Bool(0.3) {
					// Some legitimate traffic uses high ports (new
					// applications!).
					port = 1024 + uint16(rng.Intn(100))
				}
				data := mkTrafficPacket(s, port)
				_, verdict := fw.Process(2, netsim.Delivering, data)
				if verdict == netsim.Accept {
					admitted++
					if s.attacker {
						attacksAdmitted++
					}
				} else if !s.attacker {
					legitBlocked++
				}
			}
			res.AddRow(fmt.Sprintf("%s attackers=%.0f%%", design, attackerFrac*100),
				float64(attacksAdmitted), float64(legitBlocked), float64(admitted))
		}
	}
	res.Finding = fmt.Sprintf(
		"at 30%% attackers the port firewall admits %.0f attacks and blocks %.0f legitimate senders; the trust-aware firewall admits %.0f attacks and blocks %.0f legitimate senders",
		res.MustGet("port-fw attackers=30%", "attacks-admitted"),
		res.MustGet("port-fw attackers=30%", "legit-blocked"),
		res.MustGet("trust-fw attackers=30%", "attacks-admitted"),
		res.MustGet("trust-fw attackers=30%", "legit-blocked"))
	return res
}

// E8Anonymity tests §V-B1: "while it will be possible to act
// anonymously, many people will choose not to communicate with you if
// you do" — but only when anonymity is *visible*. When anonymous senders
// can disguise themselves as ordinary traffic, receivers cannot refuse
// selectively and fraud rides in with everyone else.
func E8Anonymity(seed uint64) *Result {
	res := &Result{
		ID:    "E8",
		Title: "visible vs hidden anonymity",
		Claim: "§V-B1: a compromise outcome — anonymity is possible, but hard to disguise, so others can refuse it",
		Columns: []string{
			"fraud-suffered", "legit-completed", "anon-completed",
		},
	}
	for _, visibility := range []string{"visible-anon", "hidden-anon"} {
		for _, anonFrac := range []float64{0.2, 0.5} {
			rng := sim.NewRNG(seed)
			// Anonymous senders commit fraud at a higher rate (no
			// accountability); identified senders rarely (reputation at
			// stake).
			const fraudAnon, fraudIdent = 0.30, 0.02
			fraud, legitDone, anonDone := 0, 0, 0
			for i := 0; i < 1000; i++ {
				anon := rng.Bool(anonFrac)
				scheme := packet.IdentityCertified
				if anon {
					if visibility == "visible-anon" {
						scheme = packet.IdentityAnonymous
					} else {
						// Disguised: claims a throwaway certified
						// identity the receiver cannot distinguish.
						scheme = packet.IdentityCertified
					}
				}
				// Receiver policy: refuse visibly anonymous senders.
				refused := scheme == packet.IdentityAnonymous
				if refused {
					continue
				}
				if anon {
					anonDone++
					if rng.Bool(fraudAnon) {
						fraud++
					}
				} else {
					legitDone++
					if rng.Bool(fraudIdent) {
						fraud++
					}
				}
			}
			res.AddRow(fmt.Sprintf("%s anon=%.0f%%", visibility, anonFrac*100),
				float64(fraud), float64(legitDone), float64(anonDone))
		}
	}
	res.Finding = fmt.Sprintf(
		"with 50%% anonymous senders, visible anonymity lets receivers refuse them (fraud %.0f, all from identified senders); hidden anonymity forces acceptance and fraud rises to %.0f",
		res.MustGet("visible-anon anon=50%", "fraud-suffered"),
		res.MustGet("hidden-anon anon=50%", "fraud-suffered"))
	return res
}
