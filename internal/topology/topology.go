// Package topology models the provider-level structure of the simulated
// internetwork: autonomous systems (ISPs and stub networks) connected by
// links that carry an explicit business relationship — customer/provider
// or peer — in the style of Gao–Rexford. The business relationships are
// what make routing a tussle space (§V-A of the paper): they determine
// which paths a provider is *willing* to announce, as distinct from which
// paths exist.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// NodeID identifies an autonomous system. In the default addressing mode
// it doubles as the provider number in packet addresses (16 usable bits);
// wide-addressing simulations (netsim.WideAddressing) treat the full
// 32-bit packet address as the node number, so ISP-scale topologies of
// 10^5–10^6 nodes are addressable without changing the wire format.
type NodeID uint32

// Kind classifies a node's role.
type Kind uint8

// Node kinds.
const (
	// Transit is an ISP that carries traffic for others.
	Transit Kind = iota
	// Stub is an edge network (enterprise, residential aggregate) that
	// originates and sinks traffic but does not provide transit.
	Stub
)

func (k Kind) String() string {
	if k == Transit {
		return "transit"
	}
	return "stub"
}

// Relationship is the business relationship on a link, from the
// perspective of the lower-numbered endpoint ("A").
type Relationship uint8

// Link relationships.
const (
	// CustomerOf: A is a customer of B (B provides transit to A).
	CustomerOf Relationship = iota
	// PeerOf: A and B are settlement-free peers.
	PeerOf
)

func (r Relationship) String() string {
	if r == CustomerOf {
		return "customer-of"
	}
	return "peer-of"
}

// Link is an inter-AS adjacency.
type Link struct {
	A, B NodeID
	Rel  Relationship
	// Latency is the one-way propagation delay.
	Latency sim.Time
	// Cost is the IGP-style metric used by link-state routing. It is
	// public by construction in a link-state world (§IV-C: "a link-state
	// routing protocol requires that everyone export his link costs").
	Cost float64
}

// Other returns the endpoint that is not id.
func (l Link) Other(id NodeID) NodeID {
	if l.A == id {
		return l.B
	}
	return l.A
}

// Node is one autonomous system.
type Node struct {
	ID   NodeID
	Kind Kind
	// Tier is 1 for the core clique, higher for regional/stub tiers.
	Tier int
}

// Graph is the AS-level topology.
type Graph struct {
	Nodes map[NodeID]*Node
	Links []Link
	// adj caches adjacency: node -> link indices.
	adj map[NodeID][]int
	// nbr caches sorted neighbor lists for Neighbors; rebuilt lazily
	// whenever the link count no longer matches nbrLinks. Routing code
	// (SPF, path-vector convergence, source-route discovery) calls
	// Neighbors in its innermost loops, so this must not allocate per
	// call.
	nbr      map[NodeID][]NodeID
	nbrLinks int
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{Nodes: make(map[NodeID]*Node), adj: make(map[NodeID][]int)}
}

// AddNode inserts a node; it panics on duplicate IDs (topology bugs should
// fail loudly at construction).
func (g *Graph) AddNode(id NodeID, kind Kind, tier int) *Node {
	if _, dup := g.Nodes[id]; dup {
		panic(fmt.Sprintf("topology: duplicate node %d", id))
	}
	n := &Node{ID: id, Kind: kind, Tier: tier}
	g.Nodes[id] = n
	return n
}

// AddLink connects two existing nodes. rel is from a's perspective:
// AddLink(a, b, CustomerOf, ...) means a buys transit from b.
func (g *Graph) AddLink(a, b NodeID, rel Relationship, latency sim.Time, cost float64) {
	if _, ok := g.Nodes[a]; !ok {
		panic(fmt.Sprintf("topology: link references unknown node %d", a))
	}
	if _, ok := g.Nodes[b]; !ok {
		panic(fmt.Sprintf("topology: link references unknown node %d", b))
	}
	if a == b {
		panic("topology: self-link")
	}
	idx := len(g.Links)
	g.Links = append(g.Links, Link{A: a, B: b, Rel: rel, Latency: latency, Cost: cost})
	g.adj[a] = append(g.adj[a], idx)
	g.adj[b] = append(g.adj[b], idx)
}

// Neighbors returns the IDs adjacent to id, in deterministic (ascending)
// order. The returned slice is a shared cache — callers iterate it but
// must not modify it.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if g.nbr == nil || g.nbrLinks != len(g.Links) {
		g.rebuildNeighbors()
	}
	return g.nbr[id]
}

// rebuildNeighbors recomputes every node's sorted neighbor list. The
// cache goes stale only by adding links (links are never removed;
// netsim models failure as state on the link, not removal), so a link
// count check is a complete staleness test.
func (g *Graph) rebuildNeighbors() {
	g.nbr = make(map[NodeID][]NodeID, len(g.adj))
	for id, lis := range g.adj {
		out := make([]NodeID, 0, len(lis))
		for _, li := range lis {
			out = append(out, g.Links[li].Other(id))
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		g.nbr[id] = out
	}
	g.nbrLinks = len(g.Links)
}

// LinkBetween returns the link between a and b, if any.
func (g *Graph) LinkBetween(a, b NodeID) (Link, bool) {
	for _, li := range g.adj[a] {
		l := g.Links[li]
		if l.Other(a) == b {
			return l, true
		}
	}
	return Link{}, false
}

// RelFrom reports the relationship of the a→b edge from a's perspective:
// what b is to a. The second return is false when no link exists.
func (g *Graph) RelFrom(a, b NodeID) (NeighborClass, bool) {
	l, ok := g.LinkBetween(a, b)
	if !ok {
		return 0, false
	}
	switch {
	case l.Rel == PeerOf:
		return Peer, true
	case l.A == a && l.Rel == CustomerOf:
		return Provider, true // a is customer of b => b is a's provider
	default:
		return Customer, true // b is a's customer
	}
}

// NeighborClass is what a neighbor is to this node.
type NeighborClass uint8

// Neighbor classes from the local node's perspective.
const (
	Customer NeighborClass = iota
	Peer
	Provider
)

func (c NeighborClass) String() string {
	switch c {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	default:
		return "provider"
	}
}

// Providers returns the IDs this node buys transit from.
func (g *Graph) Providers(id NodeID) []NodeID {
	var out []NodeID
	for _, n := range g.Neighbors(id) {
		if c, ok := g.RelFrom(id, n); ok && c == Provider {
			out = append(out, n)
		}
	}
	return out
}

// Customers returns the IDs that buy transit from this node.
func (g *Graph) Customers(id NodeID) []NodeID {
	var out []NodeID
	for _, n := range g.Neighbors(id) {
		if c, ok := g.RelFrom(id, n); ok && c == Customer {
			out = append(out, n)
		}
	}
	return out
}

// Peers returns this node's settlement-free peers.
func (g *Graph) Peers(id NodeID) []NodeID {
	var out []NodeID
	for _, n := range g.Neighbors(id) {
		if c, ok := g.RelFrom(id, n); ok && c == Peer {
			out = append(out, n)
		}
	}
	return out
}

// NodeIDs returns all node IDs in ascending order (deterministic
// iteration for simulations).
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stubs returns all stub node IDs in ascending order.
func (g *Graph) Stubs() []NodeID {
	var out []NodeID
	for _, id := range g.NodeIDs() {
		if g.Nodes[id].Kind == Stub {
			out = append(out, id)
		}
	}
	return out
}

// Connected reports whether the undirected graph is connected.
func (g *Graph) Connected() bool {
	if len(g.Nodes) == 0 {
		return true
	}
	start := g.NodeIDs()[0]
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range g.Neighbors(n) {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(g.Nodes)
}
