// Package srcroute implements user-controlled provider-level source
// routing, the mechanism §V-A4 of the paper recommends the Internet
// should support: "a mechanism for choice such as source routing that
// would permit a customer to control the path of his packets at the level
// of providers."
//
// The paper lists the hard sub-problems of such a design, and this
// package addresses each:
//
//   - "where these user-selected routes come from": Discover enumerates
//     candidate provider paths from the (public) topology map;
//   - "how failures are managed": Verify compares the requested path with
//     the path actually taken (from the simulator trace), so senders can
//     fail over to the next candidate;
//   - "how the user knows that the traffic actually took the desired
//     route": Verify again;
//   - "recognition of the need for payment": WithPayment attaches an
//     in-band voucher covering the hops, priced per waypoint.
package srcroute

import (
	"crypto/hmac"
	"crypto/sha256"
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Candidate is one provider-level path option with its advertised cost.
type Candidate struct {
	// Path is the full node sequence src..dst.
	Path []topology.NodeID
	// Latency is the summed link latency (the exposed "cost of choice"
	// from §IV-C).
	Latency sim.Time
}

// Discover enumerates up to k loop-free provider paths from src to dst,
// each at most maxLen nodes, ordered by latency. It searches the public
// topology map; in a deployed system this is the user's "up-graph" plus a
// route lookup service.
func Discover(g *topology.Graph, src, dst topology.NodeID, k, maxLen int) []Candidate {
	if maxLen <= 0 {
		maxLen = 8
	}
	var out []Candidate
	visited := map[topology.NodeID]bool{src: true}
	path := []topology.NodeID{src}
	var lat sim.Time
	var dfs func(cur topology.NodeID)
	dfs = func(cur topology.NodeID) {
		if cur == dst {
			cp := make([]topology.NodeID, len(path))
			copy(cp, path)
			out = append(out, Candidate{Path: cp, Latency: lat})
			return
		}
		if len(path) >= maxLen {
			return
		}
		for _, nb := range g.Neighbors(cur) {
			if visited[nb] {
				continue
			}
			l, _ := g.LinkBetween(cur, nb)
			visited[nb] = true
			path = append(path, nb)
			lat += l.Latency
			dfs(nb)
			lat -= l.Latency
			path = path[:len(path)-1]
			visited[nb] = false
		}
	}
	dfs(src)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency < out[j].Latency
		}
		return len(out[i].Path) < len(out[j].Path)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Option converts a candidate into the wire source-route option: the
// interior waypoints, excluding the source and destination providers.
func (c Candidate) Option() *packet.SourceRouteOption {
	if len(c.Path) <= 2 {
		return nil
	}
	hops := make([]packet.Addr, 0, len(c.Path)-2)
	for _, n := range c.Path[1 : len(c.Path)-1] {
		hops = append(hops, packet.MakeAddr(uint16(n), 0))
	}
	if len(hops) > 10 {
		hops = hops[:10]
	}
	return &packet.SourceRouteOption{Hops: hops}
}

// Verify reports whether a delivered packet actually followed the
// requested candidate path. took is the node sequence from the simulator
// trace. Source routes are loose, so verification requires only that
// every requested node appears in order.
func (c Candidate) Verify(took []topology.NodeID) bool {
	i := 0
	for _, n := range took {
		if i < len(c.Path) && n == c.Path[i] {
			i++
		}
	}
	return i == len(c.Path)
}

// PerHopPriceMilli is the default per-waypoint price for source-routed
// transit, in thousandths of a unit.
const PerHopPriceMilli = 250

// WithPayment attaches a payment voucher covering the candidate's
// interior hops to a TIP header, authenticated with the payer's key.
// The returned amount is what the sender committed.
func WithPayment(tip *packet.TIP, c Candidate, payerKey []byte, nonce uint32) uint32 {
	interior := 0
	if len(c.Path) > 2 {
		interior = len(c.Path) - 2
	}
	amount := uint32(interior * PerHopPriceMilli)
	tip.Payment = &packet.PaymentOption{
		Payer:       tip.Src,
		Payee:       packet.Broadcast, // redeemable by any on-path provider
		AmountMilli: amount,
		Nonce:       nonce,
		MAC:         VoucherMAC(payerKey, tip.Src, packet.Broadcast, amount, nonce),
	}
	return amount
}

// VoucherMAC computes the authenticator for a payment voucher.
func VoucherMAC(key []byte, payer, payee packet.Addr, amount, nonce uint32) uint64 {
	mac := hmac.New(sha256.New, key)
	var buf [16]byte
	put32 := func(off int, v uint32) {
		buf[off] = byte(v >> 24)
		buf[off+1] = byte(v >> 16)
		buf[off+2] = byte(v >> 8)
		buf[off+3] = byte(v)
	}
	put32(0, uint32(payer))
	put32(4, uint32(payee))
	put32(8, amount)
	put32(12, nonce)
	mac.Write(buf[:])
	sum := mac.Sum(nil)
	var out uint64
	for i := 0; i < 8; i++ {
		out = out<<8 | uint64(sum[i])
	}
	return out
}

// VerifyVoucher checks a received payment option against the payer's key.
func VerifyVoucher(key []byte, p *packet.PaymentOption) bool {
	if p == nil {
		return false
	}
	return p.MAC == VoucherMAC(key, p.Payer, p.Payee, p.AmountMilli, p.Nonce)
}
