// Package packet implements the self-describing datagram format used by
// the simulated internetwork: a layered packet model in the style of
// gopacket, with a layer-type registry, an eager decoder that tolerates
// unknown or malformed layers, an allocation-free Parser for hot paths,
// and a serialization buffer for constructing packets.
//
// The protocol family implemented here is deliberately not IP: it is the
// "TIP" (Tussle Internet Protocol) stack, a compact analogue whose choice
// points — type-of-service bits, source-route options, payment vouchers,
// tunnels, and an encryption layer with a visibility flag — are exactly
// the mechanisms "Tussle in Cyberspace" reasons about.
package packet

import "fmt"

// LayerType identifies a protocol layer. The value doubles as the
// on-the-wire "next protocol" field, making every datagram self-describing
// (§I of the paper: "the self-describing datagram packet").
type LayerType uint8

// Registered layer types. LayerTypeNone terminates decoding; LayerTypeRaw
// is an opaque payload.
const (
	LayerTypeNone    LayerType = 0
	LayerTypeRaw     LayerType = 1
	LayerTypeTIP     LayerType = 2
	LayerTypeTTP     LayerType = 3
	LayerTypeTunnel  LayerType = 4
	LayerTypeCrypto  LayerType = 5
	LayerTypePolicy  LayerType = 6
	LayerTypeFailure LayerType = 255
)

var layerNames = map[LayerType]string{
	LayerTypeNone:    "None",
	LayerTypeRaw:     "Raw",
	LayerTypeTIP:     "TIP",
	LayerTypeTTP:     "TTP",
	LayerTypeTunnel:  "Tunnel",
	LayerTypeCrypto:  "Crypto",
	LayerTypePolicy:  "Policy",
	LayerTypeFailure: "DecodeFailure",
}

func (t LayerType) String() string {
	if n, ok := layerNames[t]; ok {
		return n
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// RegisterLayerType adds a custom layer type name and decoder constructor.
// It panics if the type is already registered — layer numbering is a
// global namespace and silent collisions would corrupt decoding.
func RegisterLayerType(t LayerType, name string, newDecoder func() DecodingLayer) {
	if _, ok := layerNames[t]; ok {
		panic(fmt.Sprintf("packet: layer type %d already registered", t))
	}
	layerNames[t] = name
	decoders[t] = newDecoder
}

// Layer is one decoded protocol layer within a packet.
type Layer interface {
	// LayerType returns the type of this layer.
	LayerType() LayerType
	// LayerContents returns the bytes that make up this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries for the layers
	// above it.
	LayerPayload() []byte
}

// DecodingLayer is a Layer that can decode itself from bytes, reporting
// what layer follows it. Implementations are reusable: DecodeFrom
// overwrites all state, enabling allocation-free parsing.
type DecodingLayer interface {
	Layer
	// DecodeFrom parses data into the receiver. The receiver must not
	// retain data beyond the next call unless the caller guarantees
	// immutability.
	DecodeFrom(data []byte) error
	// NextLayerType reports the type of the layer carried in
	// LayerPayload, or LayerTypeNone when this is the final layer.
	NextLayerType() LayerType
}

// SerializableLayer is a Layer that can write itself into a
// SerializeBuffer.
type SerializableLayer interface {
	// SerializeTo prepends this layer's wire representation to b. The
	// buffer already contains the serialization of all layers above
	// this one.
	SerializeTo(b *SerializeBuffer) error
	LayerType() LayerType
}

// decoders maps a LayerType to a constructor for a fresh decoder.
var decoders = map[LayerType]func() DecodingLayer{
	LayerTypeRaw:    func() DecodingLayer { return &Raw{} },
	LayerTypeTIP:    func() DecodingLayer { return &TIP{} },
	LayerTypeTTP:    func() DecodingLayer { return &TTP{} },
	LayerTypeTunnel: func() DecodingLayer { return &Tunnel{} },
	LayerTypeCrypto: func() DecodingLayer { return &Crypto{} },
	LayerTypePolicy: func() DecodingLayer { return &Policy{} },
}

// Raw is an opaque payload layer.
type Raw struct {
	Data []byte
}

// LayerType implements Layer.
func (r *Raw) LayerType() LayerType { return LayerTypeRaw }

// LayerContents implements Layer; for Raw the contents are the payload.
func (r *Raw) LayerContents() []byte { return r.Data }

// LayerPayload implements Layer; Raw carries nothing above it.
func (r *Raw) LayerPayload() []byte { return nil }

// DecodeFrom implements DecodingLayer.
func (r *Raw) DecodeFrom(data []byte) error {
	r.Data = data
	return nil
}

// NextLayerType implements DecodingLayer.
func (r *Raw) NextLayerType() LayerType { return LayerTypeNone }

// SerializeTo implements SerializableLayer.
func (r *Raw) SerializeTo(b *SerializeBuffer) error {
	copy(b.Prepend(len(r.Data)), r.Data)
	return nil
}

// DecodeFailure records a layer that could not be decoded; the packet
// retains the undecodable bytes and the error.
type DecodeFailure struct {
	Data []byte
	Err  error
}

// LayerType implements Layer.
func (d *DecodeFailure) LayerType() LayerType { return LayerTypeFailure }

// LayerContents implements Layer.
func (d *DecodeFailure) LayerContents() []byte { return d.Data }

// LayerPayload implements Layer.
func (d *DecodeFailure) LayerPayload() []byte { return nil }

func (d *DecodeFailure) Error() string {
	return fmt.Sprintf("packet: decode failure: %v", d.Err)
}

// Packet is a fully decoded datagram.
type Packet struct {
	data   []byte
	layers []Layer
}

// NewPacket decodes data starting at the given first layer type. Decoding
// is eager; a trailing DecodeFailure layer records any error. The data
// slice is retained, not copied — callers who will mutate it must pass a
// copy.
func NewPacket(data []byte, first LayerType) *Packet {
	p := &Packet{data: data}
	rest := data
	t := first
	for t != LayerTypeNone && len(rest) > 0 {
		mk, ok := decoders[t]
		if !ok {
			p.layers = append(p.layers, &DecodeFailure{Data: rest, Err: fmt.Errorf("no decoder for %v", t)})
			return p
		}
		l := mk()
		if err := l.DecodeFrom(rest); err != nil {
			p.layers = append(p.layers, &DecodeFailure{Data: rest, Err: err})
			return p
		}
		p.layers = append(p.layers, l)
		rest = l.LayerPayload()
		t = l.NextLayerType()
	}
	return p
}

// Data returns the raw bytes the packet was decoded from.
func (p *Packet) Data() []byte { return p.data }

// Layers returns all decoded layers, outermost first.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// ErrorLayer returns the DecodeFailure layer if decoding failed, else nil.
func (p *Packet) ErrorLayer() *DecodeFailure {
	for _, l := range p.layers {
		if f, ok := l.(*DecodeFailure); ok {
			return f
		}
	}
	return nil
}

// String renders the layer chain, e.g. "TIP/TTP/Raw".
func (p *Packet) String() string {
	s := ""
	for i, l := range p.layers {
		if i > 0 {
			s += "/"
		}
		s += l.LayerType().String()
	}
	return s
}

// Parser decodes a known chain of layers into caller-owned structs without
// allocation, in the style of gopacket's DecodingLayerParser. Layers not
// present in the parser terminate decoding with ErrUnsupportedLayer.
type Parser struct {
	first  LayerType
	layers map[LayerType]DecodingLayer
	// Truncated reports whether the last decode ended early because a
	// layer type had no registered decoder in this parser.
	Truncated bool
}

// ErrUnsupportedLayer is returned by Parser.DecodeLayers when it meets a
// layer type it has no decoder for; decoded layers up to that point are
// still valid.
var ErrUnsupportedLayer = fmt.Errorf("packet: unsupported layer type in parser")

// NewParser builds a parser beginning at first, using the supplied
// reusable decoding layers.
func NewParser(first LayerType, layers ...DecodingLayer) *Parser {
	p := &Parser{first: first, layers: make(map[LayerType]DecodingLayer, len(layers))}
	for _, l := range layers {
		p.layers[l.LayerType()] = l
	}
	return p
}

// DecodeLayers decodes data, appending the types decoded to *decoded
// (which is truncated first). On ErrUnsupportedLayer the successfully
// decoded prefix is valid and Truncated is set.
func (p *Parser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	rest := data
	t := p.first
	for t != LayerTypeNone && len(rest) > 0 {
		l, ok := p.layers[t]
		if !ok {
			p.Truncated = true
			return ErrUnsupportedLayer
		}
		if err := l.DecodeFrom(rest); err != nil {
			return err
		}
		*decoded = append(*decoded, t)
		rest = l.LayerPayload()
		t = l.NextLayerType()
	}
	return nil
}
