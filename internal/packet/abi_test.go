package packet

import (
	"bytes"
	"testing"
)

// ABI pin for the TIP wire format, in the udpx TestABI style: a packet
// with every option is encoded once and each field is asserted at its
// literal byte offset. The wire engine's sanity filter (filter.go) and
// the in-place patch helpers (patch.go) read raw offsets without going
// through Decode, so any drift in Encode's layout must fail here first —
// loudly, with the exact offset named — rather than silently desyncing
// the filter from the decoder.
//
// If this test breaks, you changed the wire ABI. That invalidates every
// captured byte stream, the fuzz corpus, and any deployed tussled peers;
// bump the version nibble if you mean it.

// abiTIP returns the pinned test packet and its encoding.
func abiTIP(t *testing.T) ([]byte, *TIP) {
	t.Helper()
	tip := &TIP{
		TOS:   0xA5,
		TTL:   7,
		Proto: LayerTypeRaw,
		Src:   MakeAddr(0x0102, 0x0304),
		Dst:   MakeAddr(0x0506, 0x0708),
		SourceRoute: &SourceRouteOption{
			Ptr:  1,
			Hops: []Addr{0x11121314, 0x21222324},
		},
		Payment: &PaymentOption{
			Payer:       0x31323334,
			Payee:       0x41424344,
			AmountMilli: 0x51525354,
			Nonce:       0x61626364,
			MAC:         0x7172737475767778,
		},
		Identity: &IdentityOption{Scheme: IdentityPseudonym, ID: []byte{0xAA, 0xBB}},
	}
	data, err := Serialize(tip, &Raw{Data: []byte("xyz")})
	if err != nil {
		t.Fatalf("serialize ABI packet: %v", err)
	}
	return data, tip
}

func TestABIHeaderOffsets(t *testing.T) {
	data, _ := abiTIP(t)

	if len(data) != 67 {
		t.Fatalf("encoded length = %d, want 67 (64-byte header + 3-byte payload)", len(data))
	}

	// Fixed header: offset, size, and value of every field.
	pin := []struct {
		off  int
		want []byte
		name string
	}{
		{0, []byte{0x18}, "version nibble 1 | header length 64/8"},
		{1, []byte{0xA5}, "TOS"},
		{2, []byte{0x00, 0x43}, "total length (67, big-endian u16)"},
		{4, []byte{0x07}, "TTL"},
		{5, []byte{0x01}, "protocol (LayerTypeRaw)"},
		// offsets 6..7 are the checksum, asserted separately below
		{8, []byte{0x01, 0x02, 0x03, 0x04}, "source address"},
		{12, []byte{0x05, 0x06, 0x07, 0x08}, "destination address"},

		// Source route option: kind, length, pointer, hops.
		{16, []byte{0x02}, "source route option kind"},
		{17, []byte{0x0B}, "source route option length (3+4*2)"},
		{18, []byte{0x01}, "source route pointer"},
		{19, []byte{0x11, 0x12, 0x13, 0x14}, "source route hop 0"},
		{23, []byte{0x21, 0x22, 0x23, 0x24}, "source route hop 1"},

		// Payment option: kind, length, payer, payee, amount, nonce, MAC.
		{27, []byte{0x03}, "payment option kind"},
		{28, []byte{0x1A}, "payment option length (2+24)"},
		{29, []byte{0x31, 0x32, 0x33, 0x34}, "payment payer"},
		{33, []byte{0x41, 0x42, 0x43, 0x44}, "payment payee"},
		{37, []byte{0x51, 0x52, 0x53, 0x54}, "payment amount (milli)"},
		{41, []byte{0x61, 0x62, 0x63, 0x64}, "payment nonce"},
		{45, []byte{0x71, 0x72, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78}, "payment MAC"},

		// Identity option: kind, length, scheme, ID bytes.
		{53, []byte{0x04}, "identity option kind"},
		{54, []byte{0x05}, "identity option length (3+2)"},
		{55, []byte{0x01}, "identity scheme (pseudonym)"},
		{56, []byte{0xAA, 0xBB}, "identity ID"},

		// Padding to the 8-byte header-word boundary: NOPs then End.
		{58, []byte{0x01, 0x01, 0x01, 0x01, 0x01}, "NOP padding"},
		{63, []byte{0x00}, "End option"},

		// Payload begins immediately after the header.
		{64, []byte("xyz"), "payload"},
	}
	for _, p := range pin {
		if got := data[p.off : p.off+len(p.want)]; !bytes.Equal(got, p.want) {
			t.Errorf("offset %d (%s) = % X, want % X", p.off, p.name, got, p.want)
		}
	}

	// Checksum field: offsets 6..7, ones'-complement over the header with
	// the field zeroed, and the whole header must verify to zero.
	zeroed := append([]byte(nil), data[:64]...)
	zeroed[6], zeroed[7] = 0, 0
	want := Checksum(zeroed)
	if got := getU16(data[6:]); got != want {
		t.Errorf("checksum at offset 6 = %#04x, want %#04x", got, want)
	}
	if Checksum(data[:64]) != 0 {
		t.Errorf("header does not verify: Checksum(header) = %#04x, want 0", Checksum(data[:64]))
	}
}

// TestABIConstants pins the wire constants the raw-byte readers depend
// on. These are compile-time facts, but asserting them here means a
// change shows up as an ABI failure, not as a mysterious filter bug.
func TestABIConstants(t *testing.T) {
	pins := []struct {
		got, want int
		name      string
	}{
		{tipVersion, 1, "TIP version"},
		{tipMinHeader, 16, "minimum header length"},
		{tipMaxHeader, 120, "maximum header length (15 words)"},
		{optEnd, 0, "End option kind"},
		{optNop, 1, "NOP option kind"},
		{optSourceRoute, 2, "source route option kind"},
		{optPayment, 3, "payment option kind"},
		{optIdentity, 4, "identity option kind"},
		{int(IdentityAnonymous), 0, "anonymous identity scheme"},
		{int(IdentityPseudonym), 1, "pseudonym identity scheme"},
		{int(IdentityCertified), 2, "certified identity scheme"},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d, want %d", p.name, p.got, p.want)
		}
	}
}

// TestABIFilterOffsets pins the sanity filter to the encoded layout by
// corrupting exactly the bytes the filter reads and asserting the
// verdict changes as documented — proving the filter and Encode agree on
// where the version, header-length, and total-length fields live.
func TestABIFilterOffsets(t *testing.T) {
	data, _ := abiTIP(t)
	if v := Filter(data); v != FilterAccept {
		t.Fatalf("filter rejects the ABI packet: %v", v)
	}

	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), data...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want FilterVerdict
	}{
		{"short datagram", data[:tipMinHeader-1], FilterTruncated},
		{"empty datagram", nil, FilterTruncated},
		{"version nibble at offset 0", mut(func(b []byte) { b[0] = 0x28 }), FilterBadVersion},
		{"header length below minimum", mut(func(b []byte) { b[0] = 0x11 }), FilterBadHeaderLen},
		{"header length past datagram", mut(func(b []byte) { b[0] = 0x1F }), FilterBadHeaderLen},
		{"total length past datagram at offsets 2-3", mut(func(b []byte) { b[2], b[3] = 0xFF, 0xFF }), FilterBadTotalLen},
		{"total length below header length", mut(func(b []byte) { b[2], b[3] = 0x00, 0x10 }), FilterBadTotalLen},
	}
	for _, c := range cases {
		if v := Filter(c.in); v != c.want {
			t.Errorf("%s: filter verdict %v, want %v", c.name, v, c.want)
		}
		// Completeness: whatever the filter rejects, the decoder must
		// reject too (the filter is never stricter than Decode).
		var tip TIP
		if err := tip.DecodeFrom(c.in); err == nil {
			t.Errorf("%s: filter rejects (%v) but DecodeFrom accepts", c.name, c.want)
		}
	}

	// Trailing garbage beyond the declared total length is fine for the
	// filter AND the decoder (the payload view simply ends at total) —
	// an oversized datagram is not malformed, just padded.
	padded := append(append([]byte(nil), data...), 0xDE, 0xAD, 0xBE, 0xEF)
	if v := Filter(padded); v != FilterAccept {
		t.Errorf("filter rejects oversized datagram: %v", v)
	}
	var tip TIP
	if err := tip.DecodeFrom(padded); err != nil {
		t.Errorf("decode rejects oversized datagram: %v", err)
	}
	if got := len(tip.LayerContents()) + len(tip.LayerPayload()); got != 67 {
		t.Errorf("decoded views cover %d bytes, want 67 (trailing garbage excluded)", got)
	}
}
