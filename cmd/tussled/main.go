// Command tussled runs tussle scenarios on the core engine and prints
// the round-by-round move history with the framework's metrics (control
// balance, distortion rate, visibility audit).
//
// Usage:
//
//	tussled [-scenario NAME] [-rounds N] [-list]
//	        [-cpuprofile FILE] [-memprofile FILE] [-traceout FILE]
//
// Scenarios live in internal/scenarios; -list enumerates them. The
// profiling flags wrap the scenario run in the standard runtime/pprof
// and runtime/trace collectors so hot spots in the engine can be read
// with `go tool pprof` / `go tool trace`.
//
// Wire mode (see wire.go) turns tussled into a live UDP element:
//
//	tussled -listen ADDR [-node ID] [-workers N] [-batch N] [-echo]
//	        [-peer ID=HOST:PORT ...] [-srcroute] [-srcroute-paid]
//	        [-filter-stats] [-cpuprofile FILE] [-memprofile FILE]
//	tussled -blast ADDR [-count N] [-dst P.H] [-src P.H] [-payload S]
//	        [-batch N] [-conns N] [-echo]
//
// In wire mode the profiling flags cover the serve loop: SIGINT shuts
// the engine down, flushes profiles, and prints the final counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"repro/internal/core"
	"repro/internal/scenarios"
)

func main() {
	if code, ok := wireMode(); ok {
		os.Exit(code)
	}
	scenario := flag.String("scenario", "value-pricing", "scenario name (see -list)")
	rounds := flag.Int("rounds", 12, "tussle rounds to run")
	list := flag.Bool("list", false, "list available scenarios")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the scenario run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	traceout := flag.String("traceout", "", "write a runtime execution trace of the scenario run to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(scenarios.Names(), "\n"))
		return
	}
	e, err := scenarios.Build(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tussled: %v\n", err)
		os.Exit(64)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tussled: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceout != "" {
		f, err := os.Create(*traceout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tussled: traceout: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: traceout: %v\n", err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	e.Run(*rounds)
	if *traceout != "" {
		trace.Stop()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tussled: memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "tussled: memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("scenario %q after %d rounds\n\n", *scenario, *rounds)
	fmt.Println("history:")
	for _, h := range e.History {
		action := ""
		if h.Move.Deploy != nil {
			action = "deploy " + h.Move.Deploy.Name
			if h.Move.Deploy.Distortion {
				action += " (distortion)"
			}
		}
		if h.Move.Withdraw != "" {
			if action != "" {
				action += ", "
			}
			action += "withdraw " + h.Move.Withdraw
		}
		fmt.Printf("  round %2d  %-14s %-44s %s\n", h.Round, h.Actor, action, h.Move.Note)
	}
	fmt.Println("\nutilities:")
	for _, s := range e.Stakeholders {
		fmt.Printf("  %-14s (%v): %.1f\n", s.Name, s.Kind, s.Utility)
	}
	st := e.State()
	fmt.Printf("\nmetrics: %s\n", e.Summary())
	fmt.Printf("  control balance (user - isp): %+.1f\n", e.ControlBalance(core.User, core.ISP))
	fmt.Printf("  distortion rate:              %.2f\n", core.DistortionRate(st))
	fmt.Printf("  visibility audit:             %.2f\n", core.VisibilityAudit(st))
	if e.Stable(3) {
		fmt.Println("  tussle quiescent (no moves in last 3 rounds) — for now")
	} else {
		fmt.Println("  tussle still in motion — no final outcome")
	}
}
