// Package stego implements the escalation step §VI-A footnote 17 flags:
// "The next step in this sort of escalation is steganography — the
// hiding of information inside some other form of data. It is a signal
// of a coming tussle that this topic is receiving attention right now."
//
// Two covert channels are provided — payload padding and inter-packet
// timing — together with the detectors an inspecting middlebox would
// run. The package exposes the tradeoff that makes this a pure-conflict
// tussle: embedding capacity against detectability, with the decisive
// role played by the *cover distribution* (hiding in all-zero padding is
// trivially detectable; hiding in already-random padding is
// information-theoretically invisible).
package stego

import (
	"math"

	"repro/internal/sim"
)

// CoverKind describes the innocent traffic the channel hides in.
type CoverKind uint8

// Cover kinds.
const (
	// ZeroPadding: innocent packets pad with zero bytes (most real
	// protocols). Any entropy in the padding is anomalous.
	ZeroPadding CoverKind = iota
	// RandomPadding: innocent packets already pad with random bytes
	// (e.g. encrypted protocols). Embedded ciphertext is
	// indistinguishable.
	RandomPadding
)

// MakeCover generates n innocent padding fields of the given length.
func MakeCover(kind CoverKind, n, padLen int, rng *sim.RNG) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, padLen)
		if kind == RandomPadding {
			for j := range p {
				p[j] = byte(rng.Uint64())
			}
		}
		out[i] = p
	}
	return out
}

// EmbedPadding hides msg in the padding fields, one byte of message per
// padding field starting at offset 0, cycling. Real embedders encrypt
// first; pass pre-whitened bytes to model that. It returns the number of
// fields used.
func EmbedPadding(paddings [][]byte, msg []byte) int {
	used := 0
	for i := 0; i < len(msg) && i < len(paddings); i++ {
		if len(paddings[i]) == 0 {
			continue
		}
		paddings[i][0] = msg[i]
		used++
	}
	return used
}

// ExtractPadding recovers n message bytes from the padding fields.
func ExtractPadding(paddings [][]byte, n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; i < n && i < len(paddings); i++ {
		if len(paddings[i]) == 0 {
			continue
		}
		out = append(out, paddings[i][0])
	}
	return out
}

// PaddingDetector scores a traffic sample's padding entropy against the
// expected cover distribution and reports a suspicion in [0, 1].
type PaddingDetector struct {
	Expected CoverKind
}

// Suspicion estimates how anomalous the sample is. For ZeroPadding
// covers it is the fraction of nonzero first-padding bytes; for
// RandomPadding covers it measures deviation from uniformity (which
// whitened stego does not create, so suspicion stays near zero).
func (d PaddingDetector) Suspicion(paddings [][]byte) float64 {
	if len(paddings) == 0 {
		return 0
	}
	switch d.Expected {
	case ZeroPadding:
		nonzero := 0
		total := 0
		for _, p := range paddings {
			if len(p) == 0 {
				continue
			}
			total++
			if p[0] != 0 {
				nonzero++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(nonzero) / float64(total)
	default:
		// Chi-square-style uniformity deviation over first bytes,
		// normalized to [0, 1].
		var counts [256]int
		total := 0
		for _, p := range paddings {
			if len(p) == 0 {
				continue
			}
			counts[p[0]]++
			total++
		}
		if total == 0 {
			return 0
		}
		expected := float64(total) / 256
		var chi float64
		for _, c := range counts {
			d := float64(c) - expected
			chi += d * d / math.Max(expected, 1e-9)
		}
		// Normalize: under uniformity chi ≈ 255; scale deviations.
		norm := (chi - 255) / (255 * 4)
		if norm < 0 {
			norm = 0
		}
		if norm > 1 {
			norm = 1
		}
		return norm
	}
}

// TimingChannel embeds bits in inter-packet gaps: bit 0 sends at Base,
// bit 1 at Base+Delta, and the network adds jitter.
type TimingChannel struct {
	Base, Delta sim.Time
}

// EmbedTiming produces the gap sequence for bits, with Gaussian jitter
// of the given standard deviation.
func (c TimingChannel) EmbedTiming(bits []int, jitter sim.Time, rng *sim.RNG) []sim.Time {
	out := make([]sim.Time, len(bits))
	for i, b := range bits {
		gap := c.Base
		if b != 0 {
			gap += c.Delta
		}
		gap += sim.Time(rng.Normal(0, float64(jitter)))
		if gap < 0 {
			gap = 0
		}
		out[i] = gap
	}
	return out
}

// ExtractTiming decodes gaps back to bits by thresholding at
// Base+Delta/2.
func (c TimingChannel) ExtractTiming(gaps []sim.Time) []int {
	threshold := c.Base + c.Delta/2
	out := make([]int, len(gaps))
	for i, g := range gaps {
		if g >= threshold {
			out[i] = 1
		}
	}
	return out
}

// BitErrorRate compares sent and received bits.
func BitErrorRate(sent, got []int) float64 {
	if len(sent) == 0 {
		return 0
	}
	n := len(sent)
	if len(got) < n {
		n = len(got)
	}
	errs := len(sent) - n // missing bits count as errors
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}

// TimingDetector scores gap bimodality: covert timing channels create
// two clusters where innocent traffic has one.
type TimingDetector struct{}

// Suspicion returns 1 - (within-cluster variance / total variance) for
// the best 2-means split — near 1 for a clean two-mode channel, near 0
// for unimodal innocent jitter.
func (TimingDetector) Suspicion(gaps []sim.Time) float64 {
	if len(gaps) < 4 {
		return 0
	}
	xs := make([]float64, len(gaps))
	var mean float64
	for i, g := range gaps {
		xs[i] = float64(g)
		mean += xs[i]
	}
	mean /= float64(len(xs))
	var totalVar float64
	for _, x := range xs {
		totalVar += (x - mean) * (x - mean)
	}
	if totalVar == 0 {
		return 0
	}
	// 2-means with threshold search over the sorted midpoints (exact
	// for 1-D).
	best := totalVar
	for iter := 0; iter < 32; iter++ {
		// Threshold sweep over quantiles of the range.
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		th := lo + (hi-lo)*float64(iter+1)/33
		var s1, s2, n1, n2 float64
		for _, x := range xs {
			if x < th {
				s1 += x
				n1++
			} else {
				s2 += x
				n2++
			}
		}
		if n1 == 0 || n2 == 0 {
			continue
		}
		m1, m2 := s1/n1, s2/n2
		var within float64
		for _, x := range xs {
			if x < th {
				within += (x - m1) * (x - m1)
			} else {
				within += (x - m2) * (x - m2)
			}
		}
		if within < best {
			best = within
		}
	}
	return 1 - best/totalVar
}

// InspectionGame builds the classic inspector-vs-evader game §II-B's
// taxonomy predicts for this tussle. The evader chooses {comply, embed};
// the inspector chooses {inspect, pass}. Embedding pays gain when not
// inspected and costs penalty when caught; inspection itself costs the
// inspector inspectCost (deep analysis of every flow is expensive), a
// cost the evader banks in zero-sum terms. The game has no pure
// equilibrium — the tussle cycles through mixed strategies, the "no
// final outcome" condition.
//
// Rows (evader): 0 = comply, 1 = embed. Columns (inspector):
// 0 = inspect, 1 = pass. Entries are the evader's payoff.
func InspectionGame(gain, penalty, inspectCost float64) [][]float64 {
	return [][]float64{
		{inspectCost, 0}, // comply: inspection was wasted / nothing happens
		{-penalty, gain}, // embed: caught / exfiltrated
	}
}
