package linkstate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trust"
)

// This file implements the Perlman-style byzantine-robust variant §II-B
// cites: "network routing in the presence of byzantine failures ...
// highly resistant to attempts by players, even small groups of players,
// to place their interests over the values chosen by the designers."
//
// Threat model: a byzantine node advertises falsely low costs on its
// links to attract transit traffic, then blackholes it. Two defenses are
// composable:
//
//   - signatures: advertisements are signed, so a liar cannot forge
//     *other* nodes' advertisements (flooding integrity);
//   - two-sided attestation: a link's effective cost is the MAX of the
//     two endpoints' claims, so a liar can repel traffic from its links
//     (raise its own claims) but cannot unilaterally attract it.

// Advertisement is one node's signed claim about its adjacent links.
type Advertisement struct {
	From  topology.NodeID
	Costs map[topology.NodeID]float64
	Sig   []byte
}

// adBytes is the canonical signed encoding.
func adBytes(a *Advertisement) []byte {
	nbrs := make([]topology.NodeID, 0, len(a.Costs))
	for n := range a.Costs {
		nbrs = append(nbrs, n)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	out := []byte(fmt.Sprintf("lsa:%d", a.From))
	for _, n := range nbrs {
		out = append(out, []byte(fmt.Sprintf("|%d=%.6f", n, a.Costs[n]))...)
	}
	return out
}

// Sign attaches the node's signature.
func (a *Advertisement) Sign(p *trust.Principal) { a.Sig = p.Sign(adBytes(a)) }

// HonestAdvertisement advertises the true costs of node's links.
func HonestAdvertisement(g *topology.Graph, node topology.NodeID) *Advertisement {
	ad := &Advertisement{From: node, Costs: map[topology.NodeID]float64{}}
	for _, nb := range g.Neighbors(node) {
		l, _ := g.LinkBetween(node, nb)
		ad.Costs[nb] = l.Cost
	}
	return ad
}

// LiarAdvertisement advertises the given (falsely attractive) cost on
// every adjacent link, plus optional phantom links to non-neighbors.
func LiarAdvertisement(g *topology.Graph, node topology.NodeID, cost float64, phantoms []topology.NodeID) *Advertisement {
	ad := &Advertisement{From: node, Costs: map[topology.NodeID]float64{}}
	for _, nb := range g.Neighbors(node) {
		ad.Costs[nb] = cost
	}
	for _, p := range phantoms {
		ad.Costs[p] = cost
	}
	return ad
}

// VerifyMode selects the database's defense posture.
type VerifyMode uint8

// Verification modes.
const (
	// TrustAll accepts every advertisement at face value and uses the
	// advertiser's own claim for its outgoing edges — the cooperative
	// model "that no longer exists universally in the network".
	TrustAll VerifyMode = iota
	// SignedTwoSided verifies signatures, rejects phantom links, and
	// takes the max of the two endpoints' claims per link.
	SignedTwoSided
)

// AdDatabase is a link-state database built from advertisements rather
// than ground truth.
//
// Like Database, it embeds SPF scratch space, so an AdDatabase must not
// be shared across goroutines; each simulation owns its own.
type AdDatabase struct {
	g    *topology.Graph
	Mode VerifyMode
	ads  map[topology.NodeID]*Advertisement
	keys map[topology.NodeID]*trust.Principal

	// Rejected counts advertisements or entries discarded by defenses.
	Rejected int

	scratch     spfScratch
	nbrsScratch []topology.NodeID

	// obs instruments flooding and route computation; nil means disabled.
	spfRuns     *obs.Counter
	spfSettled  *obs.Histogram
	adsFlooded  *obs.Counter
	adsRejected *obs.Counter
}

// AttachObs enables advertisement-database observability: SPF runs and
// settled-node distribution (same names as Database, so either routing
// substrate feeds the same metrics), plus counters for advertisements
// flooded and rejected by the verification mode's defenses. A nil
// registry disables again.
func (db *AdDatabase) AttachObs(reg *obs.Registry) {
	if reg == nil {
		db.spfRuns, db.spfSettled, db.adsFlooded, db.adsRejected = nil, nil, nil, nil
		return
	}
	db.spfRuns = reg.Counter("routing.linkstate.spf_runs")
	db.spfSettled = reg.Histogram("routing.linkstate.spf_settled", obs.CountBuckets)
	db.adsFlooded = reg.Counter("routing.linkstate.ads_flooded")
	db.adsRejected = reg.Counter("routing.linkstate.ads_rejected")
}

// NewAdDatabase creates an empty advertisement database. keys maps each
// node to its signing principal (public halves are what verifiers use;
// the same struct carries both here for simplicity).
func NewAdDatabase(g *topology.Graph, mode VerifyMode, keys map[topology.NodeID]*trust.Principal) *AdDatabase {
	return &AdDatabase{g: g, Mode: mode, ads: map[topology.NodeID]*Advertisement{}, keys: keys}
}

// Flood installs an advertisement, applying the mode's checks.
func (db *AdDatabase) Flood(ad *Advertisement) {
	rejected0 := db.Rejected
	if db.adsFlooded != nil {
		db.adsFlooded.Inc()
	}
	if db.Mode == SignedTwoSided {
		p := db.keys[ad.From]
		if p == nil || ad.Sig == nil || !p.Verify(adBytes(ad), ad.Sig) {
			db.Rejected++
			if db.adsRejected != nil {
				db.adsRejected.Add(int64(db.Rejected - rejected0))
			}
			return
		}
		// Drop phantom entries: claims about non-adjacent links.
		for nb := range ad.Costs {
			if _, adj := db.g.LinkBetween(ad.From, nb); !adj {
				delete(ad.Costs, nb)
				db.Rejected++
			}
		}
	}
	if db.adsRejected != nil {
		db.adsRejected.Add(int64(db.Rejected - rejected0))
	}
	db.ads[ad.From] = ad
}

// EffectiveCost returns the cost the database believes for the directed
// edge a→b.
func (db *AdDatabase) EffectiveCost(a, b topology.NodeID) (float64, bool) {
	adA := db.ads[a]
	if adA == nil {
		return 0, false
	}
	ca, okA := adA.Costs[b]
	switch db.Mode {
	case TrustAll:
		if !okA {
			return 0, false
		}
		return ca, true
	default:
		adB := db.ads[b]
		if adB == nil {
			return 0, false
		}
		cb, okB := adB.Costs[a]
		if !okA || !okB {
			// Mutual attestation required.
			return 0, false
		}
		return math.Max(ca, cb), true
	}
}

// SPF runs Dijkstra over the advertised (not true) costs.
func (db *AdDatabase) SPF(src topology.NodeID) (next map[topology.NodeID]topology.NodeID, dist map[topology.NodeID]float64) {
	// Reuse the base implementation by adapting to a Database with
	// overrides? The edge set differs (phantoms under TrustAll), so do
	// the walk directly over claimed neighbors. The queue here is a
	// stable-sorted list (small graphs: simplicity over heap
	// bookkeeping); the scratch struct only recycles the allocations.
	sc := &db.scratch
	sc.reset()
	next = make(map[topology.NodeID]topology.NodeID)
	dist = map[topology.NodeID]float64{src: 0}
	prev, done := sc.prev, sc.done
	q := append(sc.q[:0], item{src, 0})
	head := 0
	for head < len(q) {
		it := q[head]
		head++
		if done[it.node] {
			continue
		}
		done[it.node] = true
		ad := db.ads[it.node]
		if ad == nil {
			continue
		}
		nbrs := db.nbrsScratch[:0]
		for nb := range ad.Costs {
			nbrs = append(nbrs, nb)
		}
		db.nbrsScratch = nbrs
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, nb := range nbrs {
			c, ok := db.EffectiveCost(it.node, nb)
			if !ok || c < 0 {
				continue
			}
			nd := it.dist + c
			cur, seen := dist[nb]
			if !seen || nd < cur {
				dist[nb] = nd
				prev[nb] = it.node
				q = append(q, item{nb, nd})
			}
		}
		sort.SliceStable(q[head:], func(i, j int) bool { return q[head+i].dist < q[head+j].dist })
	}
	sc.q = q[:0]
	if db.spfRuns != nil {
		db.spfRuns.Inc()
		db.spfSettled.Observe(float64(len(done)))
	}
	for dst := range dist {
		if dst == src {
			continue
		}
		hop := dst
		valid := true
		for prev[hop] != src {
			hop = prev[hop]
			if hop == 0 && prev[hop] == 0 {
				valid = false
				break
			}
		}
		if valid {
			next[dst] = hop
		}
	}
	return next, dist
}

// GenerateKeys creates one signing principal per node, deterministically.
func GenerateKeys(g *topology.Graph, rng *sim.RNG) map[topology.NodeID]*trust.Principal {
	keys := make(map[topology.NodeID]*trust.Principal, len(g.Nodes))
	for _, id := range g.NodeIDs() {
		keys[id] = trust.NewPrincipal(fmt.Sprintf("router-%d", id), trust.Certified, rng)
	}
	return keys
}
